package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/faultinject"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

func newTestServerOpts(t testing.TB, opts Options) *Server {
	t.Helper()
	m := pmm.NewModel(rng.New(1), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	return NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn), opts)
}

// thirtyPercentFaults is the stress-test fault model: ~30% of attempts are
// dropped, failed, or corrupted.
func thirtyPercentFaults(seed uint64) *faultinject.Model {
	return &faultinject.Model{Seed: seed, DropProb: 0.1, TransientProb: 0.1, CorruptProb: 0.1}
}

func TestCloseThenInferAsyncReturnsSentinel(t *testing.T) {
	s := newTestServer(t, 1)
	s.Close()
	_, err := s.InferAsync(testQuery(t))
	if !errors.Is(err, ErrServerClosed) {
		t.Fatalf("InferAsync after Close: %v, want ErrServerClosed", err)
	}
	if _, err := s.Infer(testQuery(t)); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Infer after Close: %v, want ErrServerClosed", err)
	}
	if got := s.Stats().Rejected; got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}
	s.Close() // double close is safe
}

// TestStressWithFaults hammers one server from many goroutines against a 30%
// fault rate and checks the exactly-once reply contract and that the stats
// add up. Run with -race.
func TestStressWithFaults(t *testing.T) {
	s := newTestServerOpts(t, Options{
		Workers:   4,
		QueueSize: 2, // tiny queue: exercise the queue-full retry path
		Fault:     thirtyPercentFaults(42),
	})
	defer s.Close()
	q := testQuery(t)

	const goroutines = 16
	const perG = 20
	var wg sync.WaitGroup
	var delivered, succeeded, failed atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					reply, err := s.InferAsync(q)
					if err != nil {
						t.Errorf("InferAsync: %v", err)
						return
					}
					pred := <-reply
					delivered.Add(1)
					if pred.Err != nil {
						failed.Add(1)
					} else {
						succeeded.Add(1)
					}
				} else {
					pred, err := s.Infer(q)
					delivered.Add(1)
					if err != nil {
						failed.Add(1)
					} else {
						succeeded.Add(1)
						if len(pred.Probs) == 0 {
							t.Error("successful prediction with no probs")
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG
	if delivered.Load() != total {
		t.Fatalf("delivered %d replies, want %d (lost or duplicated replies)", delivered.Load(), total)
	}
	st := s.Stats()
	if st.Queries != total {
		t.Fatalf("queries = %d, want %d", st.Queries, total)
	}
	if st.Succeeded != succeeded.Load() || st.Failed != failed.Load() {
		t.Fatalf("server counted %d/%d ok/failed, clients saw %d/%d",
			st.Succeeded, st.Failed, succeeded.Load(), failed.Load())
	}
	if st.Succeeded+st.Failed != st.Queries {
		t.Fatalf("succeeded %d + failed %d != queries %d", st.Succeeded, st.Failed, st.Queries)
	}
	if st.Rejected != 0 {
		t.Fatalf("rejected %d submissions on an open server", st.Rejected)
	}
	if st.InjDropped+st.InjTransient+st.InjCorrupt == 0 {
		t.Fatal("fault model injected nothing at 30%")
	}
	if st.Succeeded == 0 {
		t.Fatal("nothing succeeded at 30% faults with retries")
	}
}

// TestConcurrentClose races Close against a storm of submissions: every
// accepted query must still deliver exactly one reply, refused submissions
// must return the sentinel, and nothing may panic or double-close.
func TestConcurrentClose(t *testing.T) {
	for round := 0; round < 5; round++ {
		s := newTestServerOpts(t, Options{Workers: 2, Fault: thirtyPercentFaults(7)})
		q := testQuery(t)
		const goroutines = 8
		var wg sync.WaitGroup
		var accepted, refused, delivered atomic.Int64
		start := make(chan struct{})
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 10; i++ {
					reply, err := s.InferAsync(q)
					if err != nil {
						if !errors.Is(err, ErrServerClosed) {
							t.Errorf("submission refused with %v, want ErrServerClosed", err)
						}
						refused.Add(1)
						continue
					}
					accepted.Add(1)
					<-reply
					delivered.Add(1)
				}
			}()
		}
		close(start)
		s.Close() // concurrent with the storm; also closes mid-flight queries
		wg.Wait()
		if delivered.Load() != accepted.Load() {
			t.Fatalf("round %d: %d accepted but %d delivered", round, accepted.Load(), delivered.Load())
		}
		st := s.Stats()
		if st.Succeeded+st.Failed != st.Queries {
			t.Fatalf("round %d: %d+%d != %d queries", round, st.Succeeded, st.Failed, st.Queries)
		}
		if st.Rejected != refused.Load() {
			t.Fatalf("round %d: rejected %d, clients saw %d refusals", round, st.Rejected, refused.Load())
		}
		s.Close() // idempotent
	}
}

func TestRetryRecoversFromTransientFaults(t *testing.T) {
	// 50% transient failures per attempt; with 3 retries a query fails
	// only if four consecutive attempts fail (~6%).
	s := newTestServerOpts(t, Options{
		Workers:    2,
		MaxRetries: 3,
		Fault:      &faultinject.Model{Seed: 17, TransientProb: 0.5},
	})
	defer s.Close()
	q := testQuery(t)
	for i := 0; i < 40; i++ {
		s.Infer(q)
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Fatal("no retries at 50% transient faults")
	}
	if st.Succeeded <= st.Failed {
		t.Fatalf("retries did not recover: %d ok vs %d failed", st.Succeeded, st.Failed)
	}
	if st.InjTransient == 0 {
		t.Fatal("no transient faults recorded")
	}
}

func TestNoRetriesFailsFast(t *testing.T) {
	s := newTestServerOpts(t, Options{
		Workers:    1,
		MaxRetries: -1, // no retries
		Fault:      &faultinject.Model{Seed: 1, TransientProb: 1},
	})
	defer s.Close()
	if _, err := s.Infer(testQuery(t)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	st := s.Stats()
	if st.Retries != 0 {
		t.Fatalf("retried %d times with retries disabled", st.Retries)
	}
	if st.Served != 0 {
		t.Fatal("a fully-transient model must never reach the workers")
	}
}

func TestDroppedRepliesCountTimeouts(t *testing.T) {
	s := newTestServerOpts(t, Options{
		Workers: 1,
		Fault:   &faultinject.Model{Seed: 2, DropProb: 1},
	})
	defer s.Close()
	if _, err := s.Infer(testQuery(t)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	st := s.Stats()
	if st.Timeouts == 0 || st.InjDropped == 0 {
		t.Fatalf("drop faults not accounted: %+v", st)
	}
}

func TestDeadlineFires(t *testing.T) {
	s := newTestServerOpts(t, Options{
		Workers:    1,
		Deadline:   time.Nanosecond,
		MaxRetries: -1,
	})
	defer s.Close()
	q := testQuery(t)
	sawDeadline := false
	for i := 0; i < 50 && !sawDeadline; i++ {
		if _, err := s.Infer(q); errors.Is(err, ErrDeadline) {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatal("1ns deadline never fired over 50 queries")
	}
	if s.Stats().Timeouts == 0 {
		t.Fatal("timeouts not counted")
	}
}

// flakyInjector is an injectable hook whose failure mode can be toggled at
// runtime — the recovery story a static model cannot express.
type flakyInjector struct {
	broken atomic.Bool
}

func (f *flakyInjector) Plan(query uint64, attempt int) faultinject.Decision {
	if f.broken.Load() {
		return faultinject.Decision{Fault: faultinject.FaultTransient}
	}
	return faultinject.Decision{}
}

func TestHealthTracksOutageAndRecovery(t *testing.T) {
	inj := &flakyInjector{}
	s := newTestServerOpts(t, Options{
		Workers:          2,
		MaxRetries:       -1,
		BackoffBase:      time.Microsecond,
		Fault:            inj,
		HealthWindow:     32,
		HealthMinSamples: 8,
	})
	defer s.Close()
	q := testQuery(t)

	if !s.Healthy() {
		t.Fatal("fresh server must report healthy")
	}
	inj.broken.Store(true)
	for i := 0; i < 16; i++ {
		s.Infer(q)
	}
	if s.Healthy() {
		t.Fatalf("server healthy after total outage (error rate %.2f)", s.ErrorRate())
	}
	inj.broken.Store(false)
	for i := 0; i < 32; i++ {
		if _, err := s.Infer(q); err != nil {
			t.Fatalf("healthy query failed: %v", err)
		}
	}
	if !s.Healthy() {
		t.Fatalf("server still unhealthy after recovery (error rate %.2f)", s.ErrorRate())
	}
	st := s.Stats()
	if st.ErrorRate != 0 {
		t.Fatalf("error rate %.2f after a full healthy window", st.ErrorRate)
	}
}

func TestCorruptPredictionsAreDelivered(t *testing.T) {
	s := newTestServerOpts(t, Options{
		Workers: 1,
		Fault:   &faultinject.Model{Seed: 3, CorruptProb: 1},
	})
	defer s.Close()
	pred, err := s.Infer(testQuery(t))
	if err != nil {
		t.Fatalf("corruption must not fail the query: %v", err)
	}
	if len(pred.Slots) == 0 {
		t.Fatal("corrupt prediction has no slots to mistrust")
	}
	if s.Stats().InjCorrupt == 0 {
		t.Fatal("corruption not counted")
	}
}

// TestServingDeterministicUnderFaults replays the same query sequence
// against two identically-configured faulty servers and expects identical
// outcome counters — the serving half of the campaign-determinism story.
func TestServingDeterministicUnderFaults(t *testing.T) {
	run := func() Stats {
		s := newTestServerOpts(t, Options{
			Workers: 2,
			Fault:   &faultinject.Model{Seed: 23, DropProb: 0.15, TransientProb: 0.15, CorruptProb: 0.1},
		})
		defer s.Close()
		q := testQuery(t)
		for i := 0; i < 60; i++ {
			s.Infer(q)
		}
		return s.Stats()
	}
	a, b := run(), run()
	if a.Queries != b.Queries || a.Succeeded != b.Succeeded || a.Failed != b.Failed ||
		a.Retries != b.Retries || a.Timeouts != b.Timeouts ||
		a.InjDropped != b.InjDropped || a.InjTransient != b.InjTransient || a.InjCorrupt != b.InjCorrupt {
		t.Fatalf("faulty serving diverged:\n%+v\n%+v", a, b)
	}
}
