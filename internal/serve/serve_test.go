package serve

import (
	"sync"
	"testing"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/trace"
)

var (
	testKernel = kernel.MustBuild("6.8")
	testAn     = cfa.New(testKernel)
)

func newTestServer(t testing.TB, workers int) *Server {
	t.Helper()
	m := pmm.NewModel(rng.New(1), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	return NewServer(m, qgraph.NewBuilder(testKernel, testAn), workers)
}

func testQuery(t testing.TB) Query {
	t.Helper()
	p := prog.MustParse(testKernel.Target, "r0 = open(\"./file0\", 0x42, 0x1ff)\nread(r0, &b\"00ff\", 0x2)\n")
	res, err := exec.New(testKernel).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	covered := trace.NewBlockSet(trace.BlocksOf(res))
	alts := testAn.Frontier(covered)
	var targets []kernel.BlockID
	for i, alt := range alts {
		if i >= 4 {
			break
		}
		targets = append(targets, alt.Entry)
	}
	return Query{Prog: p, Traces: res.CallTraces, Targets: targets}
}

func TestInferSync(t *testing.T) {
	s := newTestServer(t, 2)
	defer s.Close()
	q := testQuery(t)
	pred, err := s.Infer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Slots) == 0 {
		t.Fatal("no slots predicted")
	}
	if len(pred.Probs) != q.Prog.NumSlots() {
		t.Fatalf("%d probs for %d slots", len(pred.Probs), q.Prog.NumSlots())
	}
	if pred.Latency <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestInferAsync(t *testing.T) {
	s := newTestServer(t, 2)
	defer s.Close()
	q := testQuery(t)
	var chans []<-chan Prediction
	for i := 0; i < 10; i++ {
		ch, err := s.InferAsync(q)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		pred := <-ch
		if len(pred.Slots) == 0 {
			t.Fatalf("query %d: empty prediction", i)
		}
	}
	st := s.Stats()
	if st.Served != 10 {
		t.Fatalf("served %d", st.Served)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := newTestServer(t, 4)
	defer s.Close()
	q := testQuery(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := s.Infer(q); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Served != 64 {
		t.Fatalf("served %d, want 64", st.Served)
	}
	if st.Throughput <= 0 || st.MeanLatency <= 0 {
		t.Fatalf("stats not tracked: %+v", st)
	}
}

func TestCloseRejectsNewQueries(t *testing.T) {
	s := newTestServer(t, 1)
	s.Close()
	if _, err := s.Infer(testQuery(t)); err == nil {
		t.Fatal("infer after close succeeded")
	}
	if _, err := s.InferAsync(testQuery(t)); err == nil {
		t.Fatal("async infer after close succeeded")
	}
	if s.Stats().Rejected != 2 {
		t.Fatalf("rejected = %d", s.Stats().Rejected)
	}
	s.Close() // double close is safe
}

func TestPredictionsMatchDirectModel(t *testing.T) {
	m := pmm.NewModel(rng.New(1), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	b := qgraph.NewBuilder(testKernel, testAn)
	q := testQuery(t)
	g := b.Build(q.Prog, q.Traces, q.Targets)
	m.Freeze()
	directSlots, directProbs := m.Predict(g)

	s := NewServer(m, b, 2)
	defer s.Close()
	pred, err := s.Infer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Slots) != len(directSlots) {
		t.Fatalf("served %d slots, direct %d", len(pred.Slots), len(directSlots))
	}
	for i := range directProbs {
		if pred.Probs[i] != directProbs[i] {
			t.Fatalf("prob %d differs", i)
		}
	}
}

func BenchmarkInference(b *testing.B) {
	s := newTestServer(b, 4)
	defer s.Close()
	q := testQuery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Infer(q); err != nil {
			b.Fatal(err)
		}
	}
}
