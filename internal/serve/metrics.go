package serve

import (
	"github.com/repro/snowplow/internal/obs"
)

// serveMetrics is the server's instrument bundle. It is built even when no
// registry is attached: obs instruments are nil-safe, so the disabled path
// costs one nil check per update and call sites stay branch-free.
type serveMetrics struct {
	queries, succeeded, failed, rejected *obs.Counter
	retries, timeouts                    *obs.Counter
	batches, batchedQueries              *obs.Counter

	injDropped, injTransient, injLatency, injCorrupt *obs.Counter

	tenantAdmitted      *obs.Counter // queries past admission control, all tenants
	tenantQuotaRejected *obs.Counter // submissions refused on tenant quota
	tenantShed          *obs.Counter // background submissions shed on SLO/health
	scaleUps            *obs.Counter // autoscaler grow decisions
	scaleDowns          *obs.Counter // autoscaler shrink decisions

	latency    *obs.Histogram // terminal query latency (queue+inference+retries)
	batchSize  *obs.Histogram // queries per forward pass
	queueWait  *obs.Histogram // attempt time spent queued before a worker picked it up
	queueDepth *obs.Gauge     // pending attempts at last worker pickup

	tenantCount  *obs.Gauge // registered tenants
	scaleWorkers *obs.Gauge // current worker-pool target
}

// newServeMetrics registers the serving instruments on reg (nil reg yields
// nil instruments — the zero-cost disabled path).
func newServeMetrics(reg *obs.Registry) *serveMetrics {
	return &serveMetrics{
		queries:             reg.Counter("serve_queries_total", "queries", "accepted inference queries"),
		succeeded:           reg.Counter("serve_succeeded_total", "queries", "queries with a delivered prediction"),
		failed:              reg.Counter("serve_failed_total", "queries", "queries terminally failed (deadline, retries, close)"),
		rejected:            reg.Counter("serve_rejected_total", "queries", "submissions refused outright (server closed)"),
		retries:             reg.Counter("serve_retries_total", "attempts", "extra attempts beyond each query's first"),
		timeouts:            reg.Counter("serve_timeouts_total", "attempts", "attempts that hit the per-attempt deadline"),
		batches:             reg.Counter("serve_batches_total", "passes", "model forward passes"),
		batchedQueries:      reg.Counter("serve_batched_queries_total", "queries", "queries served in passes of two or more"),
		injDropped:          reg.Counter("serve_inj_dropped_total", "faults", "injected dropped replies"),
		injTransient:        reg.Counter("serve_inj_transient_total", "faults", "injected transient errors"),
		injLatency:          reg.Counter("serve_inj_latency_total", "faults", "injected latency spikes"),
		injCorrupt:          reg.Counter("serve_inj_corrupt_total", "faults", "injected corrupt predictions"),
		tenantAdmitted:      reg.Counter("serve_tenant_admitted_total", "queries", "queries past admission control, all tenants"),
		tenantQuotaRejected: reg.Counter("serve_tenant_quota_rejected_total", "queries", "submissions refused on tenant quota"),
		tenantShed:          reg.Counter("serve_tenant_shed_total", "queries", "background submissions shed on SLO/health"),
		scaleUps:            reg.Counter("serve_scale_up_total", "decisions", "autoscaler grow decisions"),
		scaleDowns:          reg.Counter("serve_scale_down_total", "decisions", "autoscaler shrink decisions"),
		tenantCount:         reg.Gauge("serve_tenant_count", "tenants", "registered tenants"),
		scaleWorkers:        reg.Gauge("serve_scale_workers", "workers", "current worker-pool target"),
		latency:             reg.Histogram("serve_latency_ns", "ns", "terminal query latency (queue+inference+retries)", obs.LatencyBucketsNs()),
		batchSize:           reg.Histogram("serve_batch_size", "queries", "queries packed into one union-graph forward pass", obs.SizeBuckets()),
		queueWait:           reg.Histogram("serve_queue_wait_ns", "ns", "attempt wait in the worker queue", obs.LatencyBucketsNs()),
		queueDepth:          reg.Gauge("serve_queue_depth", "attempts", "queued attempts at last worker pickup"),
	}
}

// registerPullGauges exposes the builder-cache and tensor-pool counters
// (owned by qgraph and nn respectively) as pull-model gauges, read at
// snapshot time rather than pushed from their hot paths.
func (s *Server) registerPullGauges(reg *obs.Registry) {
	if s.builder.Cache != nil {
		reg.GaugeFunc("qgraph_cache_hits", "hits", "graph-encoding cache hits", func() int64 {
			return s.builder.Cache.Stats().Hits
		})
		reg.GaugeFunc("qgraph_cache_misses", "misses", "graph-encoding cache misses", func() int64 {
			return s.builder.Cache.Stats().Misses
		})
		reg.GaugeFunc("qgraph_cache_len", "graphs", "graphs currently cached", func() int64 {
			return int64(s.builder.Cache.Stats().Len)
		})
	}
	reg.GaugeFunc("nn_pool_borrows", "slabs", "tensor-arena slab borrows", func() int64 {
		return s.Model().PoolStats().Borrows
	})
	reg.GaugeFunc("nn_pool_reuses", "slabs", "borrows satisfied from the free list", func() int64 {
		return s.Model().PoolStats().Reuses
	})
	reg.GaugeFunc("nn_pool_idle", "slabs", "slabs parked in the free lists", func() int64 {
		return int64(s.Model().PoolStats().Idle)
	})
	reg.GaugeFunc("nn_infer_fused_linear", "kernels", "fused linear+bias(+ReLU) kernel invocations", func() int64 {
		return s.Model().InferProfile().FusedLinear
	})
	reg.GaugeFunc("nn_infer_fused_attention", "kernels", "fused attention kernel invocations", func() int64 {
		return s.Model().InferProfile().FusedAttention
	})
	reg.GaugeFunc("nn_infer_fused_addnorm", "kernels", "fused add+LayerNorm kernel invocations", func() int64 {
		return s.Model().InferProfile().FusedAddNorm
	})
	reg.GaugeFunc("nn_infer_quant_kernels", "kernels", "kernel invocations that read int8 weights", func() int64 {
		return s.Model().InferProfile().QuantKernels
	})
	reg.GaugeFunc("nn_infer_kernel_ns", "ns", "total inference-kernel time (requires kernel profiling)", func() int64 {
		return s.Model().InferProfile().KernelNs()
	})
}
