package serve

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/repro/snowplow/internal/pmm"
)

// Multi-tenant serving: tenant registration, admission control and the
// public tenant handle. One Server hosts many tenants — concurrent fuzzing
// campaigns, directed runners, cluster worker shards — that share the model,
// the graph-encoding cache and the tensor arenas, while the scheduler
// (sched.go) divides inference capacity between them by weighted fairness
// and priority class.
//
// Admission happens at submission time, before a query ever reaches a
// queue: a closed server refuses with ErrServerClosed, a tenant over its
// in-flight quota refuses with ErrQuotaExceeded, and while serving is
// degraded (the PR-1 rolling health tracker) or the observed queue wait is
// over the configured SLO, background-class queries are shed with ErrShed —
// directed-class queries ride through, as the paper's directed campaigns
// are latency-sensitive and background snowplow traffic is not. None of
// these refusals count against server health: they are load control, not
// serving failure.

// Priority classes. Higher values outrank lower ones: the scheduler drains
// the directed band before the background band, and SLO shedding never
// touches directed queries.
type Priority uint8

const (
	// PriorityBackground is the default class: bulk snowplow campaign
	// queries.
	PriorityBackground Priority = iota
	// PriorityDirected is the high class: directed-mode (Snowplow-D)
	// queries, served strictly before background traffic.
	PriorityDirected

	numPriorities = 2
)

// String names the priority class.
func (p Priority) String() string {
	if p == PriorityDirected {
		return "directed"
	}
	return "background"
}

// TenantConfig describes one tenant of a shared inference server. The zero
// value of every field but Name takes a default at registration.
type TenantConfig struct {
	// Name identifies the tenant (stats, logs, flag parsing). Required,
	// unique per server, ≤ 64 printable ASCII bytes without commas.
	Name string
	// Weight is the tenant's deficit-round-robin share: with tenants A
	// (weight 2) and B (weight 1) both saturating, A is served two queries
	// for every one of B's. Default 1, max 1<<20.
	Weight int
	// Quota bounds the tenant's in-flight accepted queries (queued plus
	// being served plus between retries). Submissions beyond it fail
	// immediately with ErrQuotaExceeded. Default 2x the tenant queue size.
	Quota int
	// QueueSize bounds the tenant's pending-attempt queue; a full queue is
	// the retryable ErrQueueFull, exactly as the shared queue was before
	// multi-tenancy. Default: the server's Options.QueueSize.
	QueueSize int
	// Priority is the tenant's default class, raised per query by an
	// explicit Query.Priority tag. Default PriorityBackground.
	Priority Priority
}

// Tenant-spec validation limits.
const (
	MaxTenantName   = 64
	MaxTenantWeight = 1 << 20
	maxTenantQueue  = 1 << 24
)

// ErrBadTenantConfig wraps every tenant-spec validation failure, so codec
// fuzzing and flag parsing can assert typed rejection.
var ErrBadTenantConfig = errors.New("serve: bad tenant config")

// Validate checks the explicit fields (defaults are applied elsewhere):
// a usable name, weight in [0, MaxTenantWeight], non-negative bounds, and a
// known priority class.
func (c TenantConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadTenantConfig)
	}
	if len(c.Name) > MaxTenantName {
		return fmt.Errorf("%w: name longer than %d bytes", ErrBadTenantConfig, MaxTenantName)
	}
	for i := 0; i < len(c.Name); i++ {
		if b := c.Name[i]; b <= ' ' || b > '~' || b == ',' {
			return fmt.Errorf("%w: name byte %q", ErrBadTenantConfig, b)
		}
	}
	if c.Weight < 0 || c.Weight > MaxTenantWeight {
		return fmt.Errorf("%w: weight %d out of [0, %d]", ErrBadTenantConfig, c.Weight, MaxTenantWeight)
	}
	if c.Quota < 0 {
		return fmt.Errorf("%w: negative quota", ErrBadTenantConfig)
	}
	if c.QueueSize < 0 || c.QueueSize > maxTenantQueue {
		return fmt.Errorf("%w: queue size %d out of [0, %d]", ErrBadTenantConfig, c.QueueSize, maxTenantQueue)
	}
	if c.Priority >= numPriorities {
		return fmt.Errorf("%w: unknown priority %d", ErrBadTenantConfig, c.Priority)
	}
	return nil
}

// withDefaults resolves zero fields against the server options.
func (c TenantConfig) withDefaults(opts Options) TenantConfig {
	if c.Weight == 0 {
		c.Weight = 1
	}
	if c.QueueSize == 0 {
		c.QueueSize = opts.QueueSize
	}
	if c.Quota == 0 {
		c.Quota = 2 * c.QueueSize
	}
	return c
}

// TenantStats is one tenant's slice of the serving counters.
type TenantStats struct {
	Name     string
	Weight   int
	Priority Priority
	// Queries counts accepted submissions; Succeeded/Failed their terminal
	// outcomes; Served worker-completed attempts.
	Queries   int64
	Succeeded int64
	Failed    int64
	Served    int64
	// Rejected counts closed-server refusals, QuotaRejected quota
	// refusals, Shed SLO/health sheds (background class only).
	Rejected      int64
	QuotaRejected int64
	Shed          int64
	// Batches counts forward passes that included at least one of the
	// tenant's queries — its share of the pooled nn arena borrows.
	Batches int64
	// CacheHits/CacheMisses attribute the shared graph-encoding cache's
	// traffic to this tenant's queries.
	CacheHits   int64
	CacheMisses int64
	// MeanQueueWait averages the tenant's attempt wait in the scheduler
	// queue (zero unless metrics or an SLO are enabled).
	MeanQueueWait time.Duration
}

// tenant is the server-side state. Queue rings and the DRR deficit are
// owned by the scheduler mutex; counters are atomics read by Stats.
type tenant struct {
	cfg TenantConfig
	idx int
	srv *Server

	// q holds one bounded FIFO ring per priority band (sched.mu).
	q [numPriorities]attemptRing
	// deficit is the DRR deficit counter per band (sched.mu).
	deficit [numPriorities]int
	// pending counts in-flight accepted queries, for quota admission.
	pending atomic.Int64

	queries, served          atomic.Int64
	succeeded, failed        atomic.Int64
	rejected, quotaRejected  atomic.Int64
	shed, batches            atomic.Int64
	cacheHits, cacheMisses   atomic.Int64
	queueWaitNs, queueWaited atomic.Int64
}

func (t *tenant) stats() TenantStats {
	st := TenantStats{
		Name:          t.cfg.Name,
		Weight:        t.cfg.Weight,
		Priority:      t.cfg.Priority,
		Queries:       t.queries.Load(),
		Succeeded:     t.succeeded.Load(),
		Failed:        t.failed.Load(),
		Served:        t.served.Load(),
		Rejected:      t.rejected.Load(),
		QuotaRejected: t.quotaRejected.Load(),
		Shed:          t.shed.Load(),
		Batches:       t.batches.Load(),
		CacheHits:     t.cacheHits.Load(),
		CacheMisses:   t.cacheMisses.Load(),
	}
	if n := t.queueWaited.Load(); n > 0 {
		st.MeanQueueWait = time.Duration(t.queueWaitNs.Load() / n)
	}
	return st
}

// Tenant is the public handle through which one campaign submits queries.
// It implements Inferrer, so fuzzer.Config.Server and directed.Config.Server
// accept either a whole *Server (its default tenant) or one Tenant of a
// shared server.
type Tenant struct {
	t *tenant
}

// Name returns the tenant's registered name.
func (h *Tenant) Name() string { return h.t.cfg.Name }

// Infer submits a query under this tenant and blocks for the prediction.
func (h *Tenant) Infer(q Query) (Prediction, error) {
	return h.t.srv.infer(h.t, q)
}

// InferAsync submits a query under this tenant and returns a channel
// delivering exactly one prediction.
func (h *Tenant) InferAsync(q Query) (<-chan Prediction, error) {
	return h.t.srv.inferAsync(h.t, q)
}

// Healthy mirrors the server's rolling health signal.
func (h *Tenant) Healthy() bool { return h.t.srv.Healthy() }

// Stats returns the server snapshot with the shared-cache counters replaced
// by this tenant's attributed slice, so a campaign's end-of-run report
// describes its own traffic rather than its neighbors'.
func (h *Tenant) Stats() Stats {
	st := h.t.srv.Stats()
	st.CacheHits = h.t.cacheHits.Load()
	st.CacheMisses = h.t.cacheMisses.Load()
	return st
}

// TenantStats returns this tenant's counter slice.
func (h *Tenant) TenantStats() TenantStats { return h.t.stats() }

// Server returns the shared server backing this tenant.
func (h *Tenant) Server() *Server { return h.t.srv }

// SwapModel hot-swaps the shared server's model (see Server.SwapModel). On
// a multi-tenant server every tenant that applies the same versioned push
// races to the same monotonic version, so exactly one swap wins and the rest
// are no-ops.
func (h *Tenant) SwapModel(m *pmm.Model, version int64) (bool, error) {
	return h.t.srv.SwapModel(m, version)
}

// Model returns the shared server's currently served model.
func (h *Tenant) Model() *pmm.Model { return h.t.srv.Model() }

// ModelVersion returns the shared server's current hot-swap generation.
func (h *Tenant) ModelVersion() int64 { return h.t.srv.ModelVersion() }

// GraphCacheCapacity reports the shared server's graph-cache capacity.
func (h *Tenant) GraphCacheCapacity() int { return h.t.srv.GraphCacheCapacity() }

// Inferrer is the inference surface campaigns program against: a dedicated
// *Server (routing through its default tenant) or one *Tenant of a shared
// multi-tenant server. (The TCP NetServer client is the separate Client
// type.)
type Inferrer interface {
	Infer(q Query) (Prediction, error)
	InferAsync(q Query) (<-chan Prediction, error)
	Healthy() bool
	Stats() Stats
}

// ModelSwapper is the optional inference surface for online continual
// learning: an Inferrer whose serving model can be hot-swapped to a new
// versioned checkpoint generation without pausing callers. Both *Server and
// *Tenant implement it; the TCP Client does not (a model handle cannot cross
// the wire — cluster workers swap their local server when the coordinator
// pushes re-encoded weights).
type ModelSwapper interface {
	Inferrer
	// SwapModel installs a strictly newer generation; it reports false for
	// stale or duplicate versions.
	SwapModel(m *pmm.Model, version int64) (bool, error)
	// Model returns the currently served model.
	Model() *pmm.Model
	// ModelVersion returns the current generation (0 = initial model).
	ModelVersion() int64
}

var (
	_ Inferrer     = (*Server)(nil)
	_ Inferrer     = (*Tenant)(nil)
	_ ModelSwapper = (*Server)(nil)
	_ ModelSwapper = (*Tenant)(nil)
)

// Tenant registers a new tenant on the server. It fails on an invalid
// config, a duplicate name, or a closed server.
func (s *Server) Tenant(cfg TenantConfig) (*Tenant, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(s.opts)
	t, err := s.sched.register(cfg, s)
	if err != nil {
		return nil, err
	}
	s.m.tenantCount.Set(int64(s.sched.numTenants()))
	return &Tenant{t: t}, nil
}

// DefaultTenant returns the implicit tenant that Server.Infer/InferAsync
// route through, preserving the single-campaign API unchanged.
func (s *Server) DefaultTenant() *Tenant { return &Tenant{t: s.def} }

// TenantStats snapshots every registered tenant's counters, in
// registration order (the default tenant first).
func (s *Server) TenantStats() []TenantStats {
	ts := s.sched.snapshotTenants()
	out := make([]TenantStats, len(ts))
	for i, t := range ts {
		out[i] = t.stats()
	}
	return out
}
