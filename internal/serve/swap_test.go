// Hot-swap atomicity: concurrent inference during repeated SwapModel calls
// must never observe a torn model — every prediction is attributable to
// exactly one checkpoint generation, and its probabilities match what that
// generation computes for the query in isolation. Run under -race this also
// proves the swap path is free of data races with the serving hot path.

package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// swapTestModels builds generations 0..n-1, each from a distinct RNG seed
// so their predictions are distinguishable.
func swapTestModels(n int) []*pmm.Model {
	models := make([]*pmm.Model, n)
	for i := range models {
		models[i] = pmm.NewModel(rng.New(uint64(500+i)), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	}
	return models
}

// referenceProbs computes each generation's ground-truth answer for the
// query, prepared exactly as the server prepares a swapped model (Freeze).
func referenceProbs(t *testing.T, models []*pmm.Model, q Query) [][]float64 {
	t.Helper()
	b := qgraph.NewBuilder(testKernel, testAn)
	g := b.Build(q.Prog, q.Traces, q.Targets)
	out := make([][]float64, len(models))
	for i, m := range models {
		m.Freeze()
		_, probs := m.PredictBatch([]*qgraph.Graph{g})
		out[i] = probs[0]
	}
	for i := 1; i < len(out); i++ {
		same := true
		for j := range out[i] {
			if out[i][j] != out[0][j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("generations 0 and %d predict identically; test cannot attribute replies", i)
		}
	}
	return out
}

// TestSwapAtomicityUnderLoad hammers Infer from many goroutines while the
// model is repeatedly hot-swapped. Every reply must carry a version that
// was live at some point, and its probabilities must be bit-identical to
// that version's reference answer — a torn read (old weights, new version,
// or half-swapped state) fails the comparison.
func TestSwapAtomicityUnderLoad(t *testing.T) {
	const generations = 6
	models := swapTestModels(generations)
	q := testQuery(t)
	want := referenceProbs(t, models, q)

	s := NewServerOpts(models[0], qgraph.NewBuilder(testKernel, testAn), Options{
		Workers:   4,
		QueueSize: 256,
		Deadline:  30 * time.Second,
	})
	defer s.Close()

	const callers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[int64]int{}
	fail := func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	check := func(pred Prediction, err error) {
		if err != nil || pred.Err != nil {
			fail("infer failed during swap: %v / %v", err, pred.Err)
			return
		}
		v := pred.ModelVersion
		if v < 0 || v >= generations {
			fail("prediction from unknown generation %d", v)
			return
		}
		ref := want[v]
		if len(pred.Probs) != len(ref) {
			fail("generation %d: %d probs, want %d", v, len(pred.Probs), len(ref))
			return
		}
		for j := range ref {
			if math.Float64bits(pred.Probs[j]) != math.Float64bits(ref[j]) {
				fail("generation %d: prob[%d] = %v, want %v (torn read?)", v, j, pred.Probs[j], ref[j])
				return
			}
		}
		mu.Lock()
		seen[v]++
		mu.Unlock()
	}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				check(s.Infer(q))
			}
		}()
	}

	// Swap through every generation while the callers hammer the server.
	for v := 1; v < generations; v++ {
		time.Sleep(5 * time.Millisecond)
		swapped, err := s.SwapModel(models[v], int64(v))
		if err != nil {
			t.Fatalf("swap to v%d: %v", v, err)
		}
		if !swapped {
			t.Fatalf("swap to v%d rejected", v)
		}
		if got := s.ModelVersion(); got != int64(v) {
			t.Fatalf("ModelVersion() = %d after swap to %d", got, v)
		}
	}
	// Stale and duplicate versions must be idempotent no-ops.
	if swapped, err := s.SwapModel(models[1], 1); err != nil || swapped {
		t.Fatalf("stale swap = (%v, %v), want rejected no-op", swapped, err)
	}
	close(stop)
	wg.Wait()

	// The final generation must answer at least once (drained callers), and
	// under normal scheduling several generations get traffic.
	pred, err := s.Infer(q)
	check(pred, err)
	if pred.ModelVersion != generations-1 {
		t.Fatalf("post-swap prediction from v%d, want v%d", pred.ModelVersion, generations-1)
	}
	if len(seen) < 2 {
		t.Logf("only %d generation(s) observed under load (slow host?); attribution still verified", len(seen))
	}
}
