package serve

import (
	"sync"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// TestBatchedMatchesUnbatched submits the same query through a batching
// server and checks the prediction is bit-identical to a direct model call:
// micro-batching must never change an answer.
func TestBatchedMatchesUnbatched(t *testing.T) {
	m := pmm.NewModel(rng.New(1), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	builder := qgraph.NewBuilder(testKernel, testAn)
	s := NewServerOpts(m, builder, Options{Workers: 1, BatchSize: 8})
	defer s.Close()
	q := testQuery(t)
	g := builder.Build(q.Prog, q.Traces, q.Targets)
	wantSlots, wantProbs := m.Predict(g)

	// Many concurrent submissions so the worker actually forms batches.
	var chans []<-chan Prediction
	for i := 0; i < 64; i++ {
		ch, err := s.InferAsync(q)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		pred := <-ch
		if pred.Err != nil {
			t.Fatalf("query %d failed: %v", i, pred.Err)
		}
		if len(pred.Slots) != len(wantSlots) {
			t.Fatalf("query %d: %d slots, want %d", i, len(pred.Slots), len(wantSlots))
		}
		for j := range wantSlots {
			if pred.Slots[j] != wantSlots[j] {
				t.Fatalf("query %d slot %d differs", i, j)
			}
		}
		for j := range wantProbs {
			if pred.Probs[j] != wantProbs[j] {
				t.Fatalf("query %d prob %d not bit-identical: %v vs %v", i, j, pred.Probs[j], wantProbs[j])
			}
		}
	}
	st := s.Stats()
	if st.Served != 64 || st.Batches == 0 {
		t.Fatalf("stats: served=%d batches=%d", st.Served, st.Batches)
	}
	if st.Batches > 64 {
		t.Fatalf("more batches than queries: %d", st.Batches)
	}
	if st.AvgBatchSize < 1 {
		t.Fatalf("avg batch size %v", st.AvgBatchSize)
	}
}

// TestBatchedStressWithFaults is the -race stress test for the batched
// dispatch path: multiple workers, micro-batching, a multi-threaded MatMul
// pool, a shared graph cache, and ~30% injected faults, hammered by
// concurrent clients. Every accepted query must still deliver exactly one
// prediction.
func TestBatchedStressWithFaults(t *testing.T) {
	nn.SetWorkers(2)
	defer nn.SetWorkers(1)
	m := pmm.NewModel(rng.New(2), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	builder := qgraph.NewBuilder(testKernel, testAn).WithCache(32)
	s := NewServerOpts(m, builder, Options{
		Workers:    2,
		BatchSize:  8,
		Deadline:   2 * time.Second,
		MaxRetries: 3,
		Fault:      thirtyPercentFaults(99),
	})
	defer s.Close()
	q := testQuery(t)

	const clients, perClient = 8, 20
	var wg sync.WaitGroup
	var mu sync.Mutex
	delivered := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ch, err := s.InferAsync(q)
				if err != nil {
					t.Error(err)
					return
				}
				pred := <-ch
				mu.Lock()
				delivered++
				mu.Unlock()
				if pred.Err == nil && len(pred.Probs) != q.Prog.NumSlots() {
					t.Errorf("prediction with %d probs, want %d", len(pred.Probs), q.Prog.NumSlots())
					return
				}
			}
		}()
	}
	wg.Wait()
	if delivered != clients*perClient {
		t.Fatalf("delivered %d predictions, want %d", delivered, clients*perClient)
	}
	st := s.Stats()
	if st.Queries != clients*perClient {
		t.Fatalf("queries %d, want %d", st.Queries, clients*perClient)
	}
	if st.Succeeded+st.Failed != st.Queries {
		t.Fatalf("succeeded %d + failed %d != queries %d", st.Succeeded, st.Failed, st.Queries)
	}
	// All clients submit the same query: after the first build, every
	// rebuild must be a cache hit.
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("cache counters hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
}

// TestBatchSizeOneUnchanged pins the default path: BatchSize 1 (or unset)
// serves every query in its own pass, preserving pre-batching behavior.
func TestBatchSizeOneUnchanged(t *testing.T) {
	s := newTestServer(t, 2)
	defer s.Close()
	q := testQuery(t)
	for i := 0; i < 5; i++ {
		if _, err := s.Infer(q); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Batches != st.Served {
		t.Fatalf("batches %d != served %d with BatchSize=1", st.Batches, st.Served)
	}
	if st.BatchedQueries != 0 {
		t.Fatalf("batched queries %d with BatchSize=1", st.BatchedQueries)
	}
	if st.AvgBatchSize != 1 {
		t.Fatalf("avg batch size %v with BatchSize=1", st.AvgBatchSize)
	}
}

// TestBatchedCloseDeliversAll closes the server while batched queries are
// in flight; each must still resolve to exactly one prediction.
func TestBatchedCloseDeliversAll(t *testing.T) {
	m := pmm.NewModel(rng.New(3), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	s := NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn), Options{Workers: 2, BatchSize: 4})
	q := testQuery(t)
	var chans []<-chan Prediction
	for i := 0; i < 32; i++ {
		ch, err := s.InferAsync(q)
		if err != nil {
			break
		}
		chans = append(chans, ch)
	}
	go s.Close()
	for _, ch := range chans {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatal("prediction never delivered across Close")
		}
	}
}
