// Package dataset implements the mutation dataset generation of §3.1:
// harvesting successful argument mutations by random search, merging
// mutations that reach the same new coverage, constructing noisy target
// sets, capping over-popular target blocks, and splitting by base test.
package dataset

import (
	"fmt"
	"sort"
	"strings"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/mutation"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/trace"
)

// Example is one training example ⟨sᵢ, cᵢ, aᵢⱼ, ĉᵢⱼ⟩: a base test, its
// coverage, the argument slots whose mutation reached new coverage, and the
// noisy desired-target set.
type Example struct {
	// BaseIdx identifies the base test; dataset splits keep all examples of
	// one base together (§5.1).
	BaseIdx int
	// Prog is the base test (not the mutant — §3.1 deliberately discards
	// the mutated program).
	Prog *prog.Prog
	// Traces is the base test's per-call block trace.
	Traces [][]kernel.BlockID
	// Slots is aᵢⱼ: the argument slots to label MUTATE.
	Slots []prog.GlobalSlot
	// Targets is ĉᵢⱼ: the noisy desired coverage (alternative path entries).
	Targets []kernel.BlockID
}

// Dataset is an ordered collection of examples.
type Dataset struct {
	Examples []*Example
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// Split partitions the dataset by base test into train/validation/eval
// subsets with approximately the given fractions. All examples of one base
// land in the same split, as §5.1 requires.
func (d *Dataset) Split(trainFrac, valFrac float64) (train, val, eval *Dataset) {
	bases := map[int]int{} // base idx -> split (0 train, 1 val, 2 eval)
	var order []int
	for _, ex := range d.Examples {
		if _, ok := bases[ex.BaseIdx]; !ok {
			bases[ex.BaseIdx] = -1
			order = append(order, ex.BaseIdx)
		}
	}
	sort.Ints(order)
	nTrain := int(float64(len(order)) * trainFrac)
	nVal := int(float64(len(order)) * valFrac)
	for i, b := range order {
		switch {
		case i < nTrain:
			bases[b] = 0
		case i < nTrain+nVal:
			bases[b] = 1
		default:
			bases[b] = 2
		}
	}
	train, val, eval = &Dataset{}, &Dataset{}, &Dataset{}
	for _, ex := range d.Examples {
		switch bases[ex.BaseIdx] {
		case 0:
			train.Examples = append(train.Examples, ex)
		case 1:
			val.Examples = append(val.Examples, ex)
		default:
			eval.Examples = append(eval.Examples, ex)
		}
	}
	return train, val, eval
}

// CollectStats reports what the harvest found (§5.1's reporting).
type CollectStats struct {
	Bases               int // base tests processed
	SkippedBases        int // crashed or empty-trace bases excluded
	Mutations           int // total mutations executed
	Successful          int // mutations with new coverage
	MergedSamples       int // after same-coverage merging
	Examples            int // final examples after noise + capping
	DiscardedPopularity int // examples dropped by the popularity cap
	TotalSlots          int // sum of per-base mutation surface (avg args/test)
}

// Collector harvests successful argument mutations from a kernel.
type Collector struct {
	K   *kernel.Kernel
	An  *cfa.Analysis
	Mut *mutation.Mutator

	// MutationsPerBase is the number of random argument mutations tried per
	// base test (the paper uses 1000).
	MutationsPerBase int
	// NoiseFractions are the target-set sampling fractions of §3.1's design
	// option (c); 0 means "exactly one target".
	NoiseFractions []float64
	// PopularityCap bounds how many examples any single block may appear in
	// as a target (0 disables the cap).
	PopularityCap int
	// ExactTargets switches to §3.1's design option (a): targets are exactly
	// the newly covered frontier blocks, no distractors (ablation).
	ExactTargets bool
}

// NewCollector returns a Collector with the paper's defaults.
func NewCollector(k *kernel.Kernel, an *cfa.Analysis) *Collector {
	return &Collector{
		K:                k,
		An:               an,
		Mut:              mutation.NewMutator(k.Target),
		MutationsPerBase: 1000,
		NoiseFractions:   []float64{0, 0.25, 0.50, 0.75, 1.0},
		PopularityCap:    64,
	}
}

// Collect runs the harvest over the base corpus and assembles the dataset.
// Execution is deterministic given r.
func (c *Collector) Collect(r *rng.Rand, bases []*prog.Prog) (*Dataset, CollectStats) {
	var stats CollectStats
	ds := &Dataset{}
	exe := exec.New(c.K)
	popularity := map[kernel.BlockID]int{}
	for baseIdx, base := range bases {
		stats.Bases++
		res, err := exe.Run(base)
		if err != nil || res.Crash != nil || res.Cost == 0 {
			// §5.1: bases that crash or do not complete are excluded.
			stats.SkippedBases++
			continue
		}
		covered := trace.NewBlockSet(trace.BlocksOf(res))
		stats.TotalSlots += base.NumSlots()
		frontier := c.An.Frontier(covered)
		frontierSet := map[kernel.BlockID]bool{}
		var frontierBlocks []kernel.BlockID
		seen := map[kernel.BlockID]bool{}
		for _, alt := range frontier {
			if !seen[alt.Entry] {
				seen[alt.Entry] = true
				frontierSet[alt.Entry] = true
				frontierBlocks = append(frontierBlocks, alt.Entry)
			}
		}

		// Random mutation search: key = signature of new coverage,
		// value = union of slots that reached it.
		merged := map[string]*mergedSample{}
		for j := 0; j < c.MutationsPerBase; j++ {
			slots := mutation.RandomLocalizer{K: 1}.Localize(r, base)
			rec := c.Mut.MutateArgs(r, base, slots)
			stats.Mutations++
			mres, err := exe.Run(rec.Prog)
			if err != nil {
				continue
			}
			mCovered := trace.NewBlockSet(trace.BlocksOf(mres))
			newBlocks := mCovered.Diff(covered)
			if len(newBlocks) == 0 {
				continue
			}
			stats.Successful++
			key := blocksKey(newBlocks)
			ms, ok := merged[key]
			if !ok {
				ms = &mergedSample{newBlocks: newBlocks}
				merged[key] = ms
			}
			ms.addSlots(rec.Slots)
		}
		stats.MergedSamples += len(merged)

		// Assemble examples with noisy targets.
		keys := make([]string, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			ms := merged[key]
			// The achievable part: newly covered blocks that are one branch
			// away from the base coverage.
			var near []kernel.BlockID
			for _, b := range ms.newBlocks {
				if frontierSet[b] {
					near = append(near, b)
				}
			}
			if len(near) == 0 {
				continue // no local knowledge to train on
			}
			targets := c.buildTargets(r, near, frontierBlocks)
			if len(targets) == 0 {
				continue
			}
			// Popularity cap: discard examples whose targets are dominated
			// by blocks we have already used many times.
			if c.PopularityCap > 0 {
				over := 0
				for _, t := range targets {
					if popularity[t] >= c.PopularityCap {
						over++
					}
				}
				if over == len(targets) {
					stats.DiscardedPopularity++
					continue
				}
			}
			for _, t := range targets {
				popularity[t]++
			}
			ds.Examples = append(ds.Examples, &Example{
				BaseIdx: baseIdx,
				Prog:    base,
				Traces:  res.CallTraces,
				Slots:   ms.slots(),
				Targets: targets,
			})
			stats.Examples++
		}
	}
	return ds, stats
}

// buildTargets implements the §3.1 target construction: sample from the
// noisy set (all frontier blocks) at one of the noise fractions, always
// keeping at least one actually-achievable block in the sample. With
// ExactTargets (ablation), it returns exactly the achievable blocks.
func (c *Collector) buildTargets(r *rng.Rand, near, frontier []kernel.BlockID) []kernel.BlockID {
	if c.ExactTargets {
		return append([]kernel.BlockID(nil), near...)
	}
	frac := c.NoiseFractions[r.Intn(len(c.NoiseFractions))]
	// Always include one achievable block.
	targets := []kernel.BlockID{near[r.Intn(len(near))]}
	if frac > 0 {
		n := int(float64(len(frontier)) * frac)
		perm := r.Perm(len(frontier))
		for _, pi := range perm {
			if len(targets) > n {
				break
			}
			b := frontier[pi]
			if b != targets[0] {
				targets = append(targets, b)
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	return targets
}

// mergedSample accumulates slots across mutations reaching identical new
// coverage.
type mergedSample struct {
	newBlocks []kernel.BlockID
	slotSet   map[prog.GlobalSlot]bool
}

func (m *mergedSample) addSlots(slots []prog.GlobalSlot) {
	if m.slotSet == nil {
		m.slotSet = map[prog.GlobalSlot]bool{}
	}
	for _, s := range slots {
		m.slotSet[s] = true
	}
}

func (m *mergedSample) slots() []prog.GlobalSlot {
	out := make([]prog.GlobalSlot, 0, len(m.slotSet))
	for s := range m.slotSet {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Call != out[j].Call {
			return out[i].Call < out[j].Call
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

func blocksKey(blocks []kernel.BlockID) string {
	var b strings.Builder
	for _, id := range blocks {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}
