// Package dataset implements the mutation dataset generation of §3.1:
// harvesting successful argument mutations by random search, merging
// mutations that reach the same new coverage, constructing noisy target
// sets, capping over-popular target blocks, and splitting by base test.
package dataset

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/mutation"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/trace"
)

// Example is one training example ⟨sᵢ, cᵢ, aᵢⱼ, ĉᵢⱼ⟩: a base test, its
// coverage, the argument slots whose mutation reached new coverage, and the
// noisy desired-target set.
type Example struct {
	// BaseIdx identifies the base test; dataset splits keep all examples of
	// one base together (§5.1).
	BaseIdx int
	// Prog is the base test (not the mutant — §3.1 deliberately discards
	// the mutated program).
	Prog *prog.Prog
	// Traces is the base test's per-call block trace.
	Traces [][]kernel.BlockID
	// Slots is aᵢⱼ: the argument slots to label MUTATE.
	Slots []prog.GlobalSlot
	// Targets is ĉᵢⱼ: the noisy desired coverage (alternative path entries).
	Targets []kernel.BlockID
}

// Dataset is an ordered collection of examples.
type Dataset struct {
	Examples []*Example
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// Split partitions the dataset by base test into train/validation/eval
// subsets with approximately the given fractions. All examples of one base
// land in the same split, as §5.1 requires.
func (d *Dataset) Split(trainFrac, valFrac float64) (train, val, eval *Dataset) {
	bases := map[int]int{} // base idx -> split (0 train, 1 val, 2 eval)
	var order []int
	for _, ex := range d.Examples {
		if _, ok := bases[ex.BaseIdx]; !ok {
			bases[ex.BaseIdx] = -1
			order = append(order, ex.BaseIdx)
		}
	}
	sort.Ints(order)
	nTrain := int(float64(len(order)) * trainFrac)
	nVal := int(float64(len(order)) * valFrac)
	for i, b := range order {
		switch {
		case i < nTrain:
			bases[b] = 0
		case i < nTrain+nVal:
			bases[b] = 1
		default:
			bases[b] = 2
		}
	}
	train, val, eval = &Dataset{}, &Dataset{}, &Dataset{}
	for _, ex := range d.Examples {
		switch bases[ex.BaseIdx] {
		case 0:
			train.Examples = append(train.Examples, ex)
		case 1:
			val.Examples = append(val.Examples, ex)
		default:
			eval.Examples = append(eval.Examples, ex)
		}
	}
	return train, val, eval
}

// CollectStats reports what the harvest found (§5.1's reporting).
type CollectStats struct {
	Bases               int // base tests processed
	SkippedBases        int // crashed or empty-trace bases excluded
	Mutations           int // total mutations executed
	Successful          int // mutations with new coverage
	MergedSamples       int // after same-coverage merging
	Examples            int // final examples after noise + capping
	DiscardedPopularity int // examples dropped by the popularity cap
	TotalSlots          int // sum of per-base mutation surface (avg args/test)
}

// Collector harvests successful argument mutations from a kernel.
type Collector struct {
	K   *kernel.Kernel
	An  *cfa.Analysis
	Mut *mutation.Mutator

	// MutationsPerBase is the number of random argument mutations tried per
	// base test (the paper uses 1000).
	MutationsPerBase int
	// NoiseFractions are the target-set sampling fractions of §3.1's design
	// option (c); 0 means "exactly one target".
	NoiseFractions []float64
	// PopularityCap bounds how many examples any single block may appear in
	// as a target (0 disables the cap).
	PopularityCap int
	// ExactTargets switches to §3.1's design option (a): targets are exactly
	// the newly covered frontier blocks, no distractors (ablation).
	ExactTargets bool
	// Workers is the number of goroutines harvesting bases concurrently,
	// each with a private executor and a per-base derived RNG stream. The
	// harvest output is independent of the worker count: every base's
	// random search is seeded from one upfront draw per base, and the
	// cross-base state (popularity cap, example order) is applied by a
	// reconciler in base order. 0 or 1 harvests single-threaded.
	Workers int
	// Metrics, when non-nil, receives the collect_* instruments. Purely
	// observational — never part of harvest determinism.
	Metrics *obs.Registry
}

// NewCollector returns a Collector with the paper's defaults.
func NewCollector(k *kernel.Kernel, an *cfa.Analysis) *Collector {
	return &Collector{
		K:                k,
		An:               an,
		Mut:              mutation.NewMutator(k.Target),
		MutationsPerBase: 1000,
		NoiseFractions:   []float64{0, 0.25, 0.50, 0.75, 1.0},
		PopularityCap:    64,
	}
}

func (c *Collector) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// collectInstruments bundles the optional collect_* metrics. Every field
// is nil (and every update a no-op) when no registry is attached.
type collectInstruments struct {
	bases          *obs.Counter
	mutations      *obs.Counter
	examples       *obs.Counter
	baseLatency    *obs.Histogram
	examplesPerSec *obs.Gauge
}

func newCollectInstruments(reg *obs.Registry) collectInstruments {
	return collectInstruments{
		bases:          reg.Counter("collect_bases_total", "bases", "base tests harvested (including skipped ones)"),
		mutations:      reg.Counter("collect_mutations_total", "execs", "mutant executions during dataset harvesting"),
		examples:       reg.Counter("collect_examples_total", "examples", "dataset examples assembled after noise and capping"),
		baseLatency:    reg.Histogram("collect_base_latency_ns", "ns", "wall-clock duration of one base's mutation search", obs.LatencyBucketsNs()),
		examplesPerSec: reg.Gauge("collect_examples_per_sec", "examples/s", "dataset assembly throughput of the last Collect call"),
	}
}

// candidate is one would-be example computed worker-side: the merged slot
// set and its noisy targets, before the popularity cap (which is cross-base
// state and belongs to the reconciler).
type candidate struct {
	slots   []prog.GlobalSlot
	targets []kernel.BlockID
}

// baseHarvest is the complete worker-side result for one base test.
type baseHarvest struct {
	skipped    bool
	numSlots   int
	mutations  int
	successful int
	merged     int
	traces     [][]kernel.BlockID
	candidates []candidate
}

// Collect runs the harvest over the base corpus and assembles the dataset.
// Execution is deterministic given r, and independent of Workers: each base
// is searched with a private RNG seeded by one upfront draw from r, workers
// only compute per-base results, and this goroutine folds them — stats,
// popularity cap, example assembly — in base order.
func (c *Collector) Collect(r *rng.Rand, bases []*prog.Prog) (*Dataset, CollectStats) {
	ins := newCollectInstruments(c.Metrics)
	start := time.Now()

	// One seed per base, drawn upfront so the per-base streams never depend
	// on scheduling.
	seeds := make([]uint64, len(bases))
	for i := range seeds {
		seeds[i] = r.Uint64()
	}

	harvests := make([]baseHarvest, len(bases))
	workers := c.workers()
	if workers > len(bases) {
		workers = len(bases)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			exe := exec.New(c.K)
			var keyBuf []byte
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bases) {
					return
				}
				t0 := time.Now()
				// Flaky crash outcomes must be a function of the base, not of
				// what this executor ran before (work assignment is dynamic).
				exe.SeedFlaky(seeds[i] ^ 0x5eed)
				harvests[i] = c.harvestBase(exe, &keyBuf, rng.New(seeds[i]), bases[i])
				ins.baseLatency.Observe(time.Since(t0).Nanoseconds())
				ins.bases.Inc()
				ins.mutations.Add(int64(harvests[i].mutations))
			}
		}()
	}
	wg.Wait()

	// Reconcile in base order: all cross-base state lives here.
	var stats CollectStats
	ds := &Dataset{}
	popularity := map[kernel.BlockID]int{}
	for baseIdx := range bases {
		h := &harvests[baseIdx]
		stats.Bases++
		if h.skipped {
			stats.SkippedBases++
			continue
		}
		stats.TotalSlots += h.numSlots
		stats.Mutations += h.mutations
		stats.Successful += h.successful
		stats.MergedSamples += h.merged
		for _, cand := range h.candidates {
			// Popularity cap: discard examples whose targets are dominated
			// by blocks we have already used many times.
			if c.PopularityCap > 0 {
				over := 0
				for _, t := range cand.targets {
					if popularity[t] >= c.PopularityCap {
						over++
					}
				}
				if over == len(cand.targets) {
					stats.DiscardedPopularity++
					continue
				}
			}
			for _, t := range cand.targets {
				popularity[t]++
			}
			ds.Examples = append(ds.Examples, &Example{
				BaseIdx: baseIdx,
				Prog:    bases[baseIdx],
				Traces:  h.traces,
				Slots:   cand.slots,
				Targets: cand.targets,
			})
			stats.Examples++
		}
	}
	ins.examples.Add(int64(stats.Examples))
	if s := time.Since(start).Seconds(); s > 0 {
		ins.examplesPerSec.Set(int64(float64(stats.Examples) / s))
	}
	return ds, stats
}

// harvestBase runs one base's random mutation search with a private RNG and
// executor, and precomputes its example candidates. Everything that depends
// on cross-base state (popularity) is deferred to the reconciler; the RNG
// draws of buildTargets never consult that state, so candidates are fully
// determined by (seed, base).
func (c *Collector) harvestBase(exe *exec.Executor, keyBuf *[]byte, r *rng.Rand, base *prog.Prog) baseHarvest {
	var h baseHarvest
	res, err := exe.Run(base)
	if err != nil || res.Crash != nil || res.Cost == 0 {
		// §5.1: bases that crash or do not complete are excluded.
		h.skipped = true
		return h
	}
	h.traces = res.CallTraces
	covered := trace.NewBlockSet(trace.BlocksOf(res))
	h.numSlots = base.NumSlots()
	frontier := c.An.Frontier(covered)
	frontierSet := map[kernel.BlockID]bool{}
	var frontierBlocks []kernel.BlockID
	seen := map[kernel.BlockID]bool{}
	for _, alt := range frontier {
		if !seen[alt.Entry] {
			seen[alt.Entry] = true
			frontierSet[alt.Entry] = true
			frontierBlocks = append(frontierBlocks, alt.Entry)
		}
	}

	// Random mutation search: key = signature of new coverage,
	// value = union of slots that reached it.
	merged := map[string]*mergedSample{}
	for j := 0; j < c.MutationsPerBase; j++ {
		slots := mutation.RandomLocalizer{K: 1}.Localize(r, base)
		rec := c.Mut.MutateArgs(r, base, slots)
		h.mutations++
		mres, err := exe.Run(rec.Prog)
		if err != nil {
			continue
		}
		mCovered := trace.NewBlockSet(trace.BlocksOf(mres))
		newBlocks := mCovered.Diff(covered)
		if len(newBlocks) == 0 {
			continue
		}
		h.successful++
		*keyBuf = appendBlocksKey((*keyBuf)[:0], newBlocks)
		key := string(*keyBuf)
		ms, ok := merged[key]
		if !ok {
			ms = &mergedSample{newBlocks: newBlocks}
			merged[key] = ms
		}
		ms.addSlots(rec.Slots)
	}
	h.merged = len(merged)

	// Assemble candidates with noisy targets, in deterministic key order.
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ms := merged[key]
		// The achievable part: newly covered blocks that are one branch
		// away from the base coverage.
		var near []kernel.BlockID
		for _, b := range ms.newBlocks {
			if frontierSet[b] {
				near = append(near, b)
			}
		}
		if len(near) == 0 {
			continue // no local knowledge to train on
		}
		targets := c.buildTargets(r, near, frontierBlocks)
		if len(targets) == 0 {
			continue
		}
		h.candidates = append(h.candidates, candidate{slots: ms.slots(), targets: targets})
	}
	return h
}

// buildTargets implements the §3.1 target construction: sample from the
// noisy set (all frontier blocks) at one of the noise fractions, always
// keeping at least one actually-achievable block in the sample. With
// ExactTargets (ablation), it returns exactly the achievable blocks.
func (c *Collector) buildTargets(r *rng.Rand, near, frontier []kernel.BlockID) []kernel.BlockID {
	if c.ExactTargets {
		return append([]kernel.BlockID(nil), near...)
	}
	frac := c.NoiseFractions[r.Intn(len(c.NoiseFractions))]
	// Always include one achievable block.
	targets := []kernel.BlockID{near[r.Intn(len(near))]}
	if frac > 0 {
		n := int(float64(len(frontier)) * frac)
		perm := r.Perm(len(frontier))
		for _, pi := range perm {
			if len(targets) > n {
				break
			}
			b := frontier[pi]
			if b != targets[0] {
				targets = append(targets, b)
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	return targets
}

// mergedSample accumulates slots across mutations reaching identical new
// coverage.
type mergedSample struct {
	newBlocks []kernel.BlockID
	slotSet   map[prog.GlobalSlot]bool
}

func (m *mergedSample) addSlots(slots []prog.GlobalSlot) {
	if m.slotSet == nil {
		m.slotSet = map[prog.GlobalSlot]bool{}
	}
	for _, s := range slots {
		m.slotSet[s] = true
	}
}

func (m *mergedSample) slots() []prog.GlobalSlot {
	out := make([]prog.GlobalSlot, 0, len(m.slotSet))
	for s := range m.slotSet {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Call != out[j].Call {
			return out[i].Call < out[j].Call
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

// appendBlocksKey appends the canonical "id,id,..." signature of a block
// set to buf and returns the extended buffer. Callers reuse one buffer
// across mutations, so keying a coverage diff costs one string copy
// instead of the Builder/Fprintf traffic of the old blocksKey.
func appendBlocksKey(buf []byte, blocks []kernel.BlockID) []byte {
	for _, id := range blocks {
		buf = strconv.AppendInt(buf, int64(id), 10)
		buf = append(buf, ',')
	}
	return buf
}

func blocksKey(blocks []kernel.BlockID) string {
	return string(appendBlocksKey(nil, blocks))
}
