package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
)

// Save writes the dataset in a line-oriented text format. Traces are not
// stored: execution is deterministic, so Load re-derives them by running
// each base test on the same kernel version.
func (d *Dataset) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "snowplow-dataset v1 examples=%d\n", len(d.Examples))
	for _, ex := range d.Examples {
		fmt.Fprintf(bw, "example base=%d\n", ex.BaseIdx)
		bw.WriteString(ex.Prog.Serialize())
		bw.WriteString("endprog\n")
		bw.WriteString("slots")
		for _, s := range ex.Slots {
			fmt.Fprintf(bw, " %d:%d", s.Call, s.Slot)
		}
		bw.WriteByte('\n')
		bw.WriteString("targets")
		for _, t := range ex.Targets {
			fmt.Fprintf(bw, " %d", t)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Load reads a dataset written by Save and re-executes each base test on k
// to reconstruct its traces.
func Load(r io.Reader, k *kernel.Kernel) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty input")
	}
	if !strings.HasPrefix(sc.Text(), "snowplow-dataset v1") {
		return nil, fmt.Errorf("dataset: bad header %q", sc.Text())
	}
	d := &Dataset{}
	exe := exec.New(k)
	traceCache := map[string][][]kernel.BlockID{}
	progCache := map[string]*prog.Prog{}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "example base=") {
			return nil, fmt.Errorf("dataset: expected example header, got %q", line)
		}
		baseIdx, err := strconv.Atoi(strings.TrimPrefix(line, "example base="))
		if err != nil {
			return nil, fmt.Errorf("dataset: bad base index: %w", err)
		}
		var progText strings.Builder
		for sc.Scan() {
			if sc.Text() == "endprog" {
				break
			}
			progText.WriteString(sc.Text())
			progText.WriteByte('\n')
		}
		text := progText.String()
		p, ok := progCache[text]
		if !ok {
			p, err = prog.Parse(k.Target, text)
			if err != nil {
				return nil, fmt.Errorf("dataset: base program: %w", err)
			}
			progCache[text] = p
		}
		traces, ok := traceCache[text]
		if !ok {
			res, err := exe.Run(p)
			if err != nil {
				return nil, fmt.Errorf("dataset: re-executing base: %w", err)
			}
			traces = res.CallTraces
			traceCache[text] = traces
		}
		ex := &Example{BaseIdx: baseIdx, Prog: p, Traces: traces}
		if !sc.Scan() || !strings.HasPrefix(sc.Text(), "slots") {
			return nil, fmt.Errorf("dataset: missing slots line")
		}
		for _, tok := range strings.Fields(sc.Text())[1:] {
			ci, si, ok := strings.Cut(tok, ":")
			if !ok {
				return nil, fmt.Errorf("dataset: bad slot %q", tok)
			}
			c, err1 := strconv.Atoi(ci)
			s, err2 := strconv.Atoi(si)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dataset: bad slot %q", tok)
			}
			// Slot references outside the base program's mutation surface
			// would poison the training pipeline (qgraph indexes by slot);
			// reject them here rather than panic later.
			if c < 0 || c >= len(p.Calls) || s < 0 || s >= len(p.Calls[c].Meta.Slots()) {
				return nil, fmt.Errorf("dataset: slot %q out of range for base program", tok)
			}
			ex.Slots = append(ex.Slots, prog.GlobalSlot{Call: c, Slot: s})
		}
		if !sc.Scan() || !strings.HasPrefix(sc.Text(), "targets") {
			return nil, fmt.Errorf("dataset: missing targets line")
		}
		for _, tok := range strings.Fields(sc.Text())[1:] {
			t, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dataset: bad target %q", tok)
			}
			// Target blocks must exist in the kernel the dataset is being
			// loaded against; kernel.Block panics on unknown IDs.
			if t < 0 || t >= k.NumBlocks() {
				return nil, fmt.Errorf("dataset: target %d outside kernel (%d blocks)", t, k.NumBlocks())
			}
			ex.Targets = append(ex.Targets, kernel.BlockID(t))
		}
		d.Examples = append(d.Examples, ex)
	}
	return d, sc.Err()
}
