package dataset

import (
	"bytes"
	"testing"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/trace"
)

var (
	testKernel = kernel.MustBuild("6.8")
	testAn     = cfa.New(testKernel)
)

func makeBases(t testing.TB, n int, seed uint64) []*prog.Prog {
	t.Helper()
	g := prog.NewGenerator(testKernel.Target)
	r := rng.New(seed)
	bases := make([]*prog.Prog, n)
	for i := range bases {
		bases[i] = g.Generate(r, 2+r.Intn(3))
	}
	return bases
}

func collectSmall(t testing.TB, nbases int, mutationsPerBase int, seed uint64) (*Dataset, CollectStats) {
	t.Helper()
	c := NewCollector(testKernel, testAn)
	c.MutationsPerBase = mutationsPerBase
	return c.Collect(rng.New(seed), makeBases(t, nbases, seed+1))
}

func TestCollectFindsSuccessfulMutations(t *testing.T) {
	ds, stats := collectSmall(t, 10, 100, 1)
	if stats.Successful == 0 {
		t.Fatal("no successful mutations in 1000 tries — kernel predicates unreachable?")
	}
	if ds.Len() == 0 {
		t.Fatal("no examples assembled")
	}
	t.Logf("stats: %+v", stats)
}

func TestExamplesWellFormed(t *testing.T) {
	ds, _ := collectSmall(t, 8, 100, 2)
	for i, ex := range ds.Examples {
		if ex.Prog == nil || len(ex.Traces) == 0 {
			t.Fatalf("example %d missing base data", i)
		}
		if len(ex.Slots) == 0 {
			t.Fatalf("example %d has no MUTATE labels", i)
		}
		if len(ex.Targets) == 0 {
			t.Fatalf("example %d has no targets", i)
		}
		// Labels must reference real slots of the base program.
		for _, s := range ex.Slots {
			if s.Call >= len(ex.Prog.Calls) || s.Slot >= len(ex.Prog.Calls[s.Call].Meta.Slots()) {
				t.Fatalf("example %d label slot %+v out of range", i, s)
			}
		}
		// Targets must be uncovered by the base test and on (or near) the
		// frontier of its coverage.
		covered := trace.BlockSet{}
		for _, tr := range ex.Traces {
			for _, b := range tr {
				covered.Add(b)
			}
		}
		for _, tgt := range ex.Targets {
			if covered.Has(tgt) {
				t.Fatalf("example %d target %d already covered by base", i, tgt)
			}
		}
	}
}

func TestTargetsContainAchievableBlock(t *testing.T) {
	// At least one target of every example must be a frontier block that a
	// recorded successful mutation actually reached. We verify the weaker
	// invariant that every example's target list intersects the frontier.
	ds, _ := collectSmall(t, 6, 100, 3)
	for i, ex := range ds.Examples {
		covered := trace.BlockSet{}
		for _, tr := range ex.Traces {
			for _, b := range tr {
				covered.Add(b)
			}
		}
		frontier := map[kernel.BlockID]bool{}
		for _, alt := range testAn.Frontier(covered) {
			frontier[alt.Entry] = true
		}
		any := false
		for _, tgt := range ex.Targets {
			if frontier[tgt] {
				any = true
				break
			}
		}
		if !any {
			t.Fatalf("example %d: no target on the frontier", i)
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	a, _ := collectSmall(t, 5, 60, 7)
	b, _ := collectSmall(t, 5, 60, 7)
	if a.Len() != b.Len() {
		t.Fatalf("example counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Examples {
		if a.Examples[i].BaseIdx != b.Examples[i].BaseIdx ||
			len(a.Examples[i].Slots) != len(b.Examples[i].Slots) ||
			len(a.Examples[i].Targets) != len(b.Examples[i].Targets) {
			t.Fatalf("example %d differs between identical runs", i)
		}
	}
}

func TestSplitByBase(t *testing.T) {
	ds, _ := collectSmall(t, 12, 80, 9)
	train, val, eval := ds.Split(0.8, 0.1)
	if train.Len()+val.Len()+eval.Len() != ds.Len() {
		t.Fatal("split lost examples")
	}
	if train.Len() == 0 {
		t.Fatal("empty train split")
	}
	inSplit := map[int]string{}
	record := func(d *Dataset, name string) {
		for _, ex := range d.Examples {
			if prev, ok := inSplit[ex.BaseIdx]; ok && prev != name {
				t.Fatalf("base %d appears in both %s and %s", ex.BaseIdx, prev, name)
			}
			inSplit[ex.BaseIdx] = name
		}
	}
	record(train, "train")
	record(val, "val")
	record(eval, "eval")
}

func TestPopularityCap(t *testing.T) {
	c := NewCollector(testKernel, testAn)
	c.MutationsPerBase = 100
	c.PopularityCap = 1
	_, stats := c.Collect(rng.New(11), makeBases(t, 10, 12))
	if stats.DiscardedPopularity == 0 {
		t.Skip("cap of 1 never hit on this seed; acceptable but unusual")
	}
	// With no cap, nothing is discarded.
	c2 := NewCollector(testKernel, testAn)
	c2.MutationsPerBase = 100
	c2.PopularityCap = 0
	_, stats2 := c2.Collect(rng.New(11), makeBases(t, 10, 12))
	if stats2.DiscardedPopularity != 0 {
		t.Fatal("discards despite disabled cap")
	}
}

func TestExactTargetsAblation(t *testing.T) {
	c := NewCollector(testKernel, testAn)
	c.MutationsPerBase = 100
	c.ExactTargets = true
	ds, _ := c.Collect(rng.New(13), makeBases(t, 6, 14))
	for i, ex := range ds.Examples {
		covered := trace.BlockSet{}
		for _, tr := range ex.Traces {
			for _, b := range tr {
				covered.Add(b)
			}
		}
		frontier := map[kernel.BlockID]bool{}
		for _, alt := range testAn.Frontier(covered) {
			frontier[alt.Entry] = true
		}
		for _, tgt := range ex.Targets {
			if !frontier[tgt] {
				t.Fatalf("exact-targets example %d has off-frontier target", i)
			}
		}
	}
}

func TestAverageSlotsPerBase(t *testing.T) {
	// §5.1: tests average >60 mutable arguments. Our 2-4 call bases should
	// average well above 10; 5-call programs are checked in prog tests.
	_, stats := collectSmall(t, 20, 10, 15)
	avg := float64(stats.TotalSlots) / float64(stats.Bases-stats.SkippedBases)
	if avg < 10 {
		t.Fatalf("average slots per base = %v", avg)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, _ := collectSmall(t, 6, 80, 17)
	if ds.Len() == 0 {
		t.Skip("no examples on this seed")
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, testKernel)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ds.Len() {
		t.Fatalf("loaded %d examples, want %d", loaded.Len(), ds.Len())
	}
	for i := range ds.Examples {
		a, b := ds.Examples[i], loaded.Examples[i]
		if a.BaseIdx != b.BaseIdx {
			t.Fatalf("example %d base mismatch", i)
		}
		if a.Prog.Serialize() != b.Prog.Serialize() {
			t.Fatalf("example %d program mismatch", i)
		}
		if len(a.Slots) != len(b.Slots) || len(a.Targets) != len(b.Targets) {
			t.Fatalf("example %d labels/targets mismatch", i)
		}
		for j := range a.Slots {
			if a.Slots[j] != b.Slots[j] {
				t.Fatalf("example %d slot %d mismatch", i, j)
			}
		}
		for j := range a.Targets {
			if a.Targets[j] != b.Targets[j] {
				t.Fatalf("example %d target %d mismatch", i, j)
			}
		}
		// Re-derived traces must match the originals (determinism).
		if len(a.Traces) != len(b.Traces) {
			t.Fatalf("example %d trace count mismatch", i)
		}
		for c := range a.Traces {
			if len(a.Traces[c]) != len(b.Traces[c]) {
				t.Fatalf("example %d call %d trace mismatch", i, c)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a dataset\n")), testKernel); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := Load(bytes.NewReader(nil), testKernel); err == nil {
		t.Fatal("expected empty-input error")
	}
}

func TestSuccessRateInPlausibleRange(t *testing.T) {
	// §5.1 reports ~45 successful mutations per 1000 (4.5%). Our kernel
	// should land in the same order of magnitude: between 0.5% and 40%.
	_, stats := collectSmall(t, 10, 200, 19)
	rate := float64(stats.Successful) / float64(stats.Mutations)
	if rate < 0.005 || rate > 0.4 {
		t.Fatalf("success rate %.3f outside plausible band", rate)
	}
	t.Logf("success rate: %.3f (paper: ~0.045)", rate)
}

func TestNoiseDropsCrashedBases(t *testing.T) {
	// A base test that crashes the kernel must be skipped.
	crashProg := prog.MustParse(testKernel.Target,
		"r0 = open(\"./file0\", 0x0, 0x0)\n"+
			"r1 = openat$scsi(r0, \"./sg0\", 0x2, 0x0)\n"+
			"ioctl$SCSI_IOCTL_SEND_COMMAND(r1, 0x1, &{0x85, &{0x1, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0}, 0x400, 0x0, &b\"00\"})\n")
	res, err := exec.New(testKernel).Run(crashProg)
	if err != nil || res.Crash == nil {
		t.Fatal("fixture does not crash")
	}
	c := NewCollector(testKernel, testAn)
	c.MutationsPerBase = 5
	_, stats := c.Collect(rng.New(21), []*prog.Prog{crashProg})
	if stats.SkippedBases != 1 {
		t.Fatalf("crashed base not skipped: %+v", stats)
	}
}

// collectAtWorkers harvests a fixed corpus with the given shard width.
func collectAtWorkers(t testing.TB, workers int) (*Dataset, CollectStats) {
	t.Helper()
	c := NewCollector(testKernel, testAn)
	c.MutationsPerBase = 60
	c.Workers = workers
	return c.Collect(rng.New(31), makeBases(t, 16, 32))
}

// TestCollectWorkersIdentical is the harvest half of the tentpole guarantee:
// sharding bases across workers must not change the dataset. Every base's
// search runs on a per-base derived RNG and a per-base reseeded flaky
// stream, and the reconciler applies all cross-base state in base order, so
// workers=1 and workers=4 produce deeply equal examples and stats. Run
// under -race this also exercises the worker pool for data races.
func TestCollectWorkersIdentical(t *testing.T) {
	ds1, stats1 := collectAtWorkers(t, 1)
	ds4, stats4 := collectAtWorkers(t, 4)
	if stats1 != stats4 {
		t.Fatalf("stats differ between 1 and 4 workers:\n  w1: %+v\n  w4: %+v", stats1, stats4)
	}
	if ds1.Len() != ds4.Len() {
		t.Fatalf("example counts differ: %d vs %d", ds1.Len(), ds4.Len())
	}
	if ds1.Len() == 0 {
		t.Fatal("harvest produced no examples — comparison is vacuous")
	}
	var b1, b4 bytes.Buffer
	if err := ds1.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := ds4.Save(&b4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b4.Bytes()) {
		t.Fatal("serialized datasets differ between 1 and 4 workers")
	}
}

// TestCollectWorkersScheduleIndependent reruns the 4-worker harvest; any
// dependence on which worker claims which base (the assignment is a dynamic
// atomic counter) would make two runs disagree.
func TestCollectWorkersScheduleIndependent(t *testing.T) {
	var runs [2][]byte
	for i := range runs {
		ds, _ := collectAtWorkers(t, 4)
		var buf bytes.Buffer
		if err := ds.Save(&buf); err != nil {
			t.Fatal(err)
		}
		runs[i] = buf.Bytes()
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatal("4-worker harvest differs between identical runs")
	}
}

// BenchmarkBlocksKey pins the allocation profile of coverage-signature
// keying on the harvest hot path: appendBlocksKey into a reused buffer must
// not allocate at all (the old fmt.Fprintf/Builder version allocated per
// block).
func BenchmarkBlocksKey(b *testing.B) {
	blocks := make([]kernel.BlockID, 24)
	for i := range blocks {
		blocks[i] = kernel.BlockID(1000 + i*37)
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendBlocksKey(buf[:0], blocks)
	}
	if len(buf) == 0 {
		b.Fatal("empty key")
	}
}
