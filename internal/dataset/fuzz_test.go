package dataset

import (
	"bytes"
	"strings"
	"testing"

	"github.com/repro/snowplow/internal/kernel"
)

// validDatasetText is a well-formed single-example dataset for the 6.8
// kernel, used both as a fuzz seed and as the round-trip fixture.
const validDatasetText = `snowplow-dataset v1 examples=1
example base=0
r0 = open("./file0", 0x42, 0x1ff)
read(r0, &b"00ff", 0x2)
endprog
slots 0:1 1:2
targets 1 2
`

// FuzzDatasetDecode feeds arbitrary bytes to the dataset loader: malformed
// input must produce an error, never a panic, and anything accepted must
// survive a Save/Load round trip (the dataset is the §3.1 pipeline's
// persistence boundary).
func FuzzDatasetDecode(f *testing.F) {
	k := kernel.MustBuild("6.8")

	f.Add([]byte(validDatasetText))
	f.Add([]byte(""))
	f.Add([]byte("snowplow-dataset v1 examples=0\n"))
	f.Add([]byte("not a dataset\n"))
	f.Add([]byte("snowplow-dataset v1 examples=1\nexample base=zzz\n"))
	f.Add([]byte(strings.Replace(validDatasetText, "slots 0:1 1:2", "slots 9:9", 1)))   // slot out of range
	f.Add([]byte(strings.Replace(validDatasetText, "targets 1 2", "targets 999999", 1))) // target out of range
	f.Add([]byte(strings.Replace(validDatasetText, "endprog\n", "", 1)))                 // truncated program
	f.Add([]byte(validDatasetText + validDatasetText[20:]))                              // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Load(bytes.NewReader(data), k)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatalf("accepted dataset fails to save: %v", err)
		}
		d2, err := Load(&buf, k)
		if err != nil {
			t.Fatalf("saved dataset does not reload: %v", err)
		}
		if len(d2.Examples) != len(d.Examples) {
			t.Fatalf("round trip changed example count: %d -> %d", len(d.Examples), len(d2.Examples))
		}
	})
}

func TestLoadRejectsOutOfRangeSlotsAndTargets(t *testing.T) {
	k := kernel.MustBuild("6.8")
	for _, bad := range []string{
		strings.Replace(validDatasetText, "slots 0:1 1:2", "slots 5:0", 1),
		strings.Replace(validDatasetText, "slots 0:1 1:2", "slots 0:99", 1),
		strings.Replace(validDatasetText, "slots 0:1 1:2", "slots -1:0", 1),
		strings.Replace(validDatasetText, "targets 1 2", "targets 99999999", 1),
		strings.Replace(validDatasetText, "targets 1 2", "targets -5", 1),
	} {
		if _, err := Load(strings.NewReader(bad), k); err == nil {
			t.Errorf("Load accepted out-of-range reference:\n%s", bad)
		}
	}
	if _, err := Load(strings.NewReader(validDatasetText), k); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}
