// Package mutation implements the test-mutation engine of the paper's
// Figure 1: the three policy decisions selector (what kind of mutation),
// localizer (where to apply it), and instantiator (how to perform it), plus
// the per-type argument mutators and Syzkaller-style heuristics.
//
// The Localizer is pluggable: the baseline fuzzer uses RandomLocalizer
// (Syzkaller's semi-random argument choice), while Snowplow substitutes the
// learned PMM localizer. Everything else — type selection and argument
// instantiation — is shared between the two systems, exactly as in the
// paper's deployment.
package mutation

import (
	"fmt"

	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/spec"
)

// Type identifies a mutation type (the selector's output domain).
type Type int

// The mutation types.
const (
	ArgMutation   Type = iota // mutate argument values in place
	CallInsertion             // insert a new call
	CallRemoval               // remove a call
)

// String returns the paper's name for the mutation type.
func (t Type) String() string {
	switch t {
	case ArgMutation:
		return "ARGUMENT_MUTATION"
	case CallInsertion:
		return "SYSCALL_INSERTION"
	case CallRemoval:
		return "SYSCALL_REMOVAL"
	default:
		return fmt.Sprintf("MUTATION(%d)", int(t))
	}
}

// Localizer chooses which argument slots of a program to mutate when the
// selector picks ArgMutation. Implementations may ignore the random source
// (a learned localizer) or use it heavily (the baseline).
type Localizer interface {
	Localize(r *rng.Rand, p *prog.Prog) []prog.GlobalSlot
}

// RandomLocalizer picks K distinct slots uniformly at random — Syzkaller's
// behaviour, and the Rand.K baseline of Table 1.
type RandomLocalizer struct {
	// K is the number of slots to select (default 1).
	K int
}

// Localize implements Localizer.
func (l RandomLocalizer) Localize(r *rng.Rand, p *prog.Prog) []prog.GlobalSlot {
	all := p.AllSlots()
	if len(all) == 0 {
		return nil
	}
	k := l.K
	if k <= 0 {
		k = 1
	}
	if k >= len(all) {
		return all
	}
	perm := r.Perm(len(all))
	out := make([]prog.GlobalSlot, k)
	for i := 0; i < k; i++ {
		out[i] = all[perm[i]]
	}
	return out
}

// Record describes one performed mutation: its type, the slots touched (for
// argument mutations), and the resulting program.
type Record struct {
	Type  Type
	Slots []prog.GlobalSlot
	Prog  *prog.Prog
}

// Mutator performs program mutations.
type Mutator struct {
	Target *spec.Registry
	Gen    *prog.Generator
	// Localizer chooses argument slots for ArgMutation; defaults to
	// RandomLocalizer{K: 1}.
	Localizer Localizer
	// TypeWeights order: ArgMutation, CallInsertion, CallRemoval. Defaults
	// follow Syzkaller's bias toward argument mutation.
	TypeWeights [3]float64
}

// NewMutator returns a Mutator with Syzkaller-like defaults.
func NewMutator(target *spec.Registry) *Mutator {
	return &Mutator{
		Target:      target,
		Gen:         prog.NewGenerator(target),
		Localizer:   RandomLocalizer{K: 1},
		TypeWeights: [3]float64{0.70, 0.20, 0.10},
	}
}

// Mutate applies one randomly selected mutation to a copy of p and reports
// what was done. The input program is never modified.
func (m *Mutator) Mutate(r *rng.Rand, p *prog.Prog) Record {
	return m.MutateType(r, p, m.SelectType(r, p))
}

// MutateType applies one mutation of the given type. Callers that override
// localization (Snowplow) select the type themselves and keep every other
// decision identical to the baseline.
func (m *Mutator) MutateType(r *rng.Rand, p *prog.Prog, t Type) Record {
	switch t {
	case ArgMutation:
		slots := m.localizer().Localize(r, p)
		if len(slots) == 0 {
			return m.insertCall(r, p)
		}
		return m.MutateArgs(r, p, slots)
	case CallInsertion:
		return m.insertCall(r, p)
	case CallRemoval:
		return m.removeCall(r, p)
	default:
		panic("mutation: unknown type")
	}
}

func (m *Mutator) localizer() Localizer {
	if m.Localizer != nil {
		return m.Localizer
	}
	return RandomLocalizer{K: 1}
}

// SelectType is the selector of Figure 1: a biased coin over mutation
// types, ignoring the target (as Syzkaller's default does).
func (m *Mutator) SelectType(r *rng.Rand, p *prog.Prog) Type {
	if len(p.Calls) == 0 {
		return CallInsertion
	}
	if len(p.Calls) <= 1 {
		// Removal of the only call produces an empty test; skew away.
		return Type(r.Choose([]float64{m.TypeWeights[0], m.TypeWeights[1], 0.001}))
	}
	return Type(r.Choose(m.TypeWeights[:]))
}

// MutateArgs clones p and re-instantiates the given slots (the instantiator
// of Figure 1). Slots behind null pointers are materialized first, because
// choosing them implies making the pointer non-null.
func (m *Mutator) MutateArgs(r *rng.Rand, p *prog.Prog, slots []prog.GlobalSlot) Record {
	q := p.Clone()
	for _, gs := range slots {
		if gs.Call >= len(q.Calls) {
			continue
		}
		call := q.Calls[gs.Call]
		specSlots := call.Meta.Slots()
		if gs.Slot >= len(specSlots) {
			continue
		}
		slot := specSlots[gs.Slot]
		materializePath(call, slot.Path)
		arg := call.ArgAtPath(slot.Path)
		if arg == nil {
			continue
		}
		m.instantiate(r, q, gs.Call, arg)
		// Most of the time keep length fields consistent, occasionally let
		// a corrupted length stand (kernels must validate them).
		if slot.Type.Kind != spec.KindLen || r.Chance(0.5) {
			call.FixupLens()
		}
	}
	return Record{Type: ArgMutation, Slots: slots, Prog: q}
}

// materializePath replaces null pointers along the path with default
// pointees so the slot's argument exists.
func materializePath(call *prog.Call, path []int) {
	if len(path) == 0 || path[0] >= len(call.Args) {
		return
	}
	a := call.Args[path[0]]
	for _, idx := range path[1:] {
		switch v := a.(type) {
		case *prog.PointerArg:
			if v.Null || v.Inner == nil {
				v.Null = false
				v.Inner = prog.DefaultArg(v.T.Elem)
			}
			a = v.Inner
		case *prog.GroupArg:
			if idx >= len(v.Inner) {
				return
			}
			a = v.Inner[idx]
		default:
			return
		}
	}
}

// instantiate mutates one argument's value according to its type.
func (m *Mutator) instantiate(r *rng.Rand, p *prog.Prog, callIdx int, a prog.Arg) {
	switch v := a.(type) {
	case *prog.ConstArg:
		v.Val = m.mutateScalar(r, v.Type(), v.Val)
	case *prog.StringArg:
		v.Val = fmt.Sprintf("./file%d", r.Intn(8))
	case *prog.DataArg:
		m.mutateData(r, v)
	case *prog.PointerArg:
		m.mutatePointer(r, v)
	case *prog.ResultArg:
		m.mutateResource(r, p, callIdx, v)
	case *prog.GroupArg:
		// Structs are not slots; nothing to do.
	}
}

// mutateScalar produces a new scalar value, retrying a few times to avoid
// no-op mutations (re-executing an identical program wastes budget).
func (m *Mutator) mutateScalar(r *rng.Rand, t *spec.Type, old uint64) uint64 {
	for try := 0; try < 4; try++ {
		if v := m.scalarOnce(r, t, old); v != old {
			return v
		}
	}
	return m.scalarOnce(r, t, old)
}

func (m *Mutator) scalarOnce(r *rng.Rand, t *spec.Type, old uint64) uint64 {
	switch t.Kind {
	case spec.KindFlags:
		switch r.Intn(3) {
		case 0: // toggle one flag
			return old ^ t.Values[r.Intn(len(t.Values))]
		case 1: // fresh subset
			var v uint64
			n := 1 + r.Intn(3)
			for i := 0; i < n; i++ {
				v |= t.Values[r.Intn(len(t.Values))]
			}
			return v
		default: // add one flag
			return old | t.Values[r.Intn(len(t.Values))]
		}
	case spec.KindEnum:
		return t.Values[r.Intn(len(t.Values))]
	case spec.KindInt:
		span := t.Max - t.Min
		switch {
		case span == 0:
			return t.Min
		case r.Chance(0.2):
			return t.Min
		case r.Chance(0.2):
			return t.Max
		case r.Chance(0.25): // small delta around old value
			delta := uint64(1 + r.Intn(16))
			if r.Bool() && old >= t.Min+delta {
				return old - delta
			}
			if old+delta <= t.Max && old+delta >= old {
				return old + delta
			}
			return old
		default:
			if span == ^uint64(0) {
				return r.Uint64()
			}
			return t.Min + r.Uint64()%(span+1)
		}
	case spec.KindLen:
		// Corrupt the length: kernels must bound-check these.
		switch r.Intn(3) {
		case 0:
			return old + uint64(1+r.Intn(64))
		case 1:
			return uint64(r.Intn(1 << 16))
		default:
			if old > 0 {
				return old - 1
			}
			return 1
		}
	case spec.KindProc:
		return uint64(r.Intn(32))
	default:
		return r.Uint64()
	}
}

func (m *Mutator) mutateData(r *rng.Rand, v *prog.DataArg) {
	max := v.T.MaxSize
	if max <= 0 {
		max = 64
	}
	switch {
	case len(v.Data) > 0 && r.Chance(0.4): // flip bytes
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			v.Data[r.Intn(len(v.Data))] ^= byte(1 << r.Intn(8))
		}
	case r.Chance(0.5): // resize
		n := r.Intn(max + 1)
		data := make([]byte, n)
		copy(data, v.Data)
		for i := len(v.Data); i < n; i++ {
			data[i] = byte(r.Uint64())
		}
		v.Data = data
	default: // fresh content
		n := r.Intn(max + 1)
		v.Data = make([]byte, n)
		for i := range v.Data {
			v.Data[i] = byte(r.Uint64())
		}
	}
}

func (m *Mutator) mutatePointer(r *rng.Rand, v *prog.PointerArg) {
	if v.Null {
		v.Null = false
		v.Inner = prog.DefaultArg(v.T.Elem)
		return
	}
	// Usually leave the pointee alone (its own slots get mutated
	// separately); occasionally null the pointer to probe EFAULT paths.
	if r.Chance(0.3) {
		v.Null = true
		v.Inner = nil
	} else if v.Inner == nil {
		v.Inner = prog.DefaultArg(v.T.Elem)
	}
}

func (m *Mutator) mutateResource(r *rng.Rand, p *prog.Prog, callIdx int, v *prog.ResultArg) {
	var candidates []int
	for i := 0; i < callIdx; i++ {
		if p.Calls[i].Meta.Ret == v.T.Resource {
			candidates = append(candidates, i)
		}
	}
	switch {
	case len(candidates) > 0 && r.Chance(0.75):
		v.Ref = candidates[r.Intn(len(candidates))]
	case r.Chance(0.5):
		v.Ref = -1
		v.Val = ^uint64(0)
	default:
		v.Ref = -1
		v.Val = r.Uint64() % 64 // plausible-but-stale small handle
	}
}

// insertCall inserts a generated call at a random position.
func (m *Mutator) insertCall(r *rng.Rand, p *prog.Prog) Record {
	q := p.Clone()
	pos := 0
	if len(q.Calls) > 0 {
		pos = r.Intn(len(q.Calls) + 1)
	}
	meta := m.chooseInsertion(r, q, pos)
	c := m.Gen.GenerateCallAt(r, q, meta, pos)
	q.InsertCall(pos, c)
	return Record{Type: CallInsertion, Prog: q}
}

// chooseInsertion favours calls related to the program's resources — the
// Syzkaller heuristic that inserted calls should interact with existing
// state.
func (m *Mutator) chooseInsertion(r *rng.Rand, p *prog.Prog, pos int) *spec.Syscall {
	if pos > 0 && r.Chance(0.6) {
		kinds := map[string]bool{}
		for i := 0; i < pos; i++ {
			if ret := p.Calls[i].Meta.Ret; ret != "" {
				kinds[ret] = true
			}
		}
		var related []*spec.Syscall
		for _, c := range m.Target.Calls {
			if consumesAny(c, kinds) {
				related = append(related, c)
			}
		}
		if len(related) > 0 {
			return related[r.Intn(len(related))]
		}
	}
	return m.Target.Calls[r.Intn(len(m.Target.Calls))]
}

func consumesAny(c *spec.Syscall, kinds map[string]bool) bool {
	for _, s := range c.Slots() {
		if s.Type.Kind == spec.KindResource && kinds[s.Type.Resource] {
			return true
		}
	}
	return false
}

func (m *Mutator) removeCall(r *rng.Rand, p *prog.Prog) Record {
	q := p.Clone()
	if len(q.Calls) > 1 {
		q.RemoveCall(r.Intn(len(q.Calls)))
	}
	return Record{Type: CallRemoval, Prog: q}
}
