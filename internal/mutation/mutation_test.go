package mutation

import (
	"testing"

	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/spec"
)

var target = spec.Base()

func genProg(t testing.TB, seed uint64, n int) *prog.Prog {
	t.Helper()
	return prog.NewGenerator(target).Generate(rng.New(seed), n)
}

func TestMutateProducesValidPrograms(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(1)
	p := genProg(t, 2, 4)
	for i := 0; i < 500; i++ {
		rec := m.Mutate(r, p)
		if rec.Prog == nil {
			t.Fatal("nil mutated program")
		}
		if err := rec.Prog.Validate(); err != nil {
			t.Fatalf("iteration %d (%v): invalid mutant: %v\n%s", i, rec.Type, err, rec.Prog.Serialize())
		}
	}
}

func TestMutateNeverModifiesInput(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(3)
	p := genProg(t, 4, 4)
	before := p.Serialize()
	for i := 0; i < 200; i++ {
		m.Mutate(r, p)
	}
	if p.Serialize() != before {
		t.Fatal("Mutate modified its input program")
	}
}

func TestMutateArgsTouchesOnlyChosenCall(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(5)
	p := genProg(t, 6, 4)
	slots := []prog.GlobalSlot{{Call: 1, Slot: 0}}
	for i := 0; i < 100; i++ {
		rec := m.MutateArgs(r, p, slots)
		for ci := range p.Calls {
			if ci == 1 {
				continue
			}
			if rec.Prog.Calls[ci].Meta != p.Calls[ci].Meta {
				t.Fatalf("call %d meta changed by arg mutation", ci)
			}
		}
		if len(rec.Prog.Calls) != len(p.Calls) {
			t.Fatal("arg mutation changed call count")
		}
	}
}

func TestMutateArgsChangesSomething(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(7)
	p := prog.MustParse(target, "r0 = open(\"./file0\", 0x42, 0x1ff)\n")
	// Slot 1 is open's flags.
	changed := 0
	const n = 100
	for i := 0; i < n; i++ {
		rec := m.MutateArgs(r, p, []prog.GlobalSlot{{Call: 0, Slot: 1}})
		if rec.Prog.Calls[0].Args[1].(*prog.ConstArg).Val != 0x42 {
			changed++
		}
	}
	if changed < n/2 {
		t.Fatalf("flags changed in only %d/%d mutations", changed, n)
	}
}

func TestMaterializeNullPointerPath(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(9)
	p := prog.MustParse(target, "r0 = open(\"./file0\", 0x0, 0x0)\nread(r0, nil, 0x0)\n")
	read := p.Calls[1]
	var bufSlot int
	for _, s := range read.Meta.Slots() {
		if s.Type.Kind == spec.KindBuffer {
			bufSlot = s.Index
		}
	}
	rec := m.MutateArgs(r, p, []prog.GlobalSlot{{Call: 1, Slot: bufSlot}})
	ptr := rec.Prog.Calls[1].Args[1].(*prog.PointerArg)
	if ptr.Null {
		t.Fatal("null pointer not materialized for slot mutation behind it")
	}
	if _, ok := ptr.Inner.(*prog.DataArg); !ok {
		t.Fatalf("materialized pointee is %T", ptr.Inner)
	}
}

func TestRandomLocalizerKDistinct(t *testing.T) {
	p := genProg(t, 11, 5)
	r := rng.New(13)
	l := RandomLocalizer{K: 8}
	for i := 0; i < 50; i++ {
		slots := l.Localize(r, p)
		if len(slots) != 8 {
			t.Fatalf("got %d slots, want 8", len(slots))
		}
		seen := map[prog.GlobalSlot]bool{}
		for _, s := range slots {
			if seen[s] {
				t.Fatalf("duplicate slot %+v", s)
			}
			seen[s] = true
		}
	}
}

func TestRandomLocalizerSmallProgram(t *testing.T) {
	p := prog.MustParse(target, "close(0xffffffffffffffff)\n")
	l := RandomLocalizer{K: 8}
	slots := l.Localize(rng.New(1), p)
	if len(slots) != p.NumSlots() {
		t.Fatalf("K larger than surface: got %d slots, want all %d", len(slots), p.NumSlots())
	}
}

func TestSelectTypeDistribution(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(17)
	p := genProg(t, 18, 4)
	counts := map[Type]int{}
	for i := 0; i < 2000; i++ {
		counts[m.SelectType(r, p)]++
	}
	if counts[ArgMutation] < 1000 {
		t.Fatalf("ArgMutation selected only %d/2000", counts[ArgMutation])
	}
	if counts[CallInsertion] == 0 || counts[CallRemoval] == 0 {
		t.Fatalf("type starvation: %v", counts)
	}
}

func TestInsertionGrowsRemovalShrinks(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(19)
	p := genProg(t, 20, 4)
	ins := m.insertCall(r, p)
	if len(ins.Prog.Calls) != len(p.Calls)+1 {
		t.Fatalf("insert: %d -> %d calls", len(p.Calls), len(ins.Prog.Calls))
	}
	if err := ins.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
	rem := m.removeCall(r, p)
	if len(rem.Prog.Calls) != len(p.Calls)-1 {
		t.Fatalf("remove: %d -> %d calls", len(p.Calls), len(rem.Prog.Calls))
	}
	if err := rem.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemovalKeepsLastCall(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(21)
	p := prog.MustParse(target, "close(0xffffffffffffffff)\n")
	rec := m.removeCall(r, p)
	if len(rec.Prog.Calls) != 1 {
		t.Fatal("removal emptied a single-call program")
	}
}

func TestMutationRecordSlots(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(23)
	p := genProg(t, 24, 3)
	for i := 0; i < 200; i++ {
		rec := m.Mutate(r, p)
		switch rec.Type {
		case ArgMutation:
			if len(rec.Slots) == 0 {
				t.Fatal("arg mutation recorded no slots")
			}
		case CallInsertion, CallRemoval:
			if len(rec.Slots) != 0 {
				t.Fatal("call mutation recorded slots")
			}
		}
	}
}

func TestEnumMutationStaysInDomain(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(25)
	enum := target.EnumSet("sock_domain")
	valid := map[uint64]bool{}
	for _, v := range enum.Values {
		valid[v] = true
	}
	for i := 0; i < 200; i++ {
		v := m.mutateScalar(r, enum, 2)
		if !valid[v] {
			t.Fatalf("enum mutation produced out-of-domain value %#x", v)
		}
	}
}

func TestIntMutationRespectsRange(t *testing.T) {
	m := NewMutator(target)
	r := rng.New(27)
	typ := &spec.Type{Kind: spec.KindInt, Min: 100, Max: 200}
	for i := 0; i < 500; i++ {
		v := m.mutateScalar(r, typ, 150)
		if v < 100 || v > 200 {
			t.Fatalf("int mutation out of range: %d", v)
		}
	}
}

func BenchmarkMutate(b *testing.B) {
	m := NewMutator(target)
	r := rng.New(1)
	p := prog.NewGenerator(target).Generate(rng.New(2), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Mutate(r, p)
	}
}
