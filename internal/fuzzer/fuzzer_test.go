package fuzzer

import (
	"testing"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

var (
	testKernel = kernel.MustBuild("6.8")
	testAn     = cfa.New(testKernel)
)

func seedCorpus(n int, seed uint64) []*prog.Prog {
	g := prog.NewGenerator(testKernel.Target)
	r := rng.New(seed)
	out := make([]*prog.Prog, n)
	for i := range out {
		out[i] = g.Generate(r, 2+r.Intn(3))
	}
	return out
}

func baselineConfig(seed uint64, budget int64) Config {
	return Config{
		Mode:       ModeSyzkaller,
		Kernel:     testKernel,
		An:         testAn,
		Seed:       seed,
		Budget:     budget,
		SeedCorpus: seedCorpus(10, seed+100),
	}
}

func TestBaselineRunProducesCoverage(t *testing.T) {
	stats, err := New(baselineConfig(1, 200_000)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalEdges == 0 {
		t.Fatal("no edge coverage")
	}
	if stats.Executions == 0 {
		t.Fatal("no executions")
	}
	if stats.CorpusSize == 0 {
		t.Fatal("empty corpus")
	}
	if len(stats.Series) == 0 {
		t.Fatal("no time series")
	}
}

func TestSeriesMonotone(t *testing.T) {
	stats, err := New(baselineConfig(2, 200_000)).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(stats.Series); i++ {
		if stats.Series[i].Cost < stats.Series[i-1].Cost {
			t.Fatalf("series cost not monotone at %d", i)
		}
		if stats.Series[i].Edges < stats.Series[i-1].Edges {
			t.Fatalf("series coverage decreased at %d", i)
		}
	}
	last := stats.Series[len(stats.Series)-1]
	if last.Edges != stats.FinalEdges {
		t.Fatalf("final series point %d != FinalEdges %d", last.Edges, stats.FinalEdges)
	}
}

func TestCoverageGrowsWithBudget(t *testing.T) {
	small, err := New(baselineConfig(3, 50_000)).Run()
	if err != nil {
		t.Fatal(err)
	}
	large, err := New(baselineConfig(3, 500_000)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if large.FinalEdges <= small.FinalEdges {
		t.Fatalf("coverage did not grow with budget: %d vs %d", small.FinalEdges, large.FinalEdges)
	}
}

func TestBaselineDeterministic(t *testing.T) {
	a, err := New(baselineConfig(4, 100_000)).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(baselineConfig(4, 100_000)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalEdges != b.FinalEdges || a.Executions != b.Executions {
		t.Fatalf("baseline runs diverge: %d/%d vs %d/%d edges/execs",
			a.FinalEdges, a.Executions, b.FinalEdges, b.Executions)
	}
}

func TestCrashesFoundAndDeduplicated(t *testing.T) {
	stats, err := New(baselineConfig(5, 1_500_000)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Crashes) == 0 {
		t.Skip("no crashes at this budget/seed (acceptable for baseline)")
	}
	seen := map[string]bool{}
	for _, c := range stats.Crashes {
		if seen[c.Spec.Title] {
			t.Fatalf("duplicate crash %q", c.Spec.Title)
		}
		seen[c.Spec.Title] = true
		if c.ProgText == "" {
			t.Fatal("crash without program")
		}
	}
}

func newServer(t testing.TB) *serve.Server {
	t.Helper()
	m := pmm.NewModel(rng.New(9), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	return serve.NewServer(m, qgraph.NewBuilder(testKernel, testAn), 2)
}

func TestSnowplowModeRuns(t *testing.T) {
	srv := newServer(t)
	defer srv.Close()
	cfg := baselineConfig(6, 200_000)
	cfg.Mode = ModeSnowplow
	cfg.Server = srv
	stats, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalEdges == 0 {
		t.Fatal("no coverage in snowplow mode")
	}
	if stats.PMMQueries == 0 {
		t.Fatal("snowplow mode issued no PMM queries")
	}
}

func TestSnowplowRequiresServer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := baselineConfig(7, 1000)
	cfg.Mode = ModeSnowplow
	New(cfg)
}

func TestModeString(t *testing.T) {
	if ModeSyzkaller.String() != "syzkaller" || ModeSnowplow.String() != "snowplow" {
		t.Fatal("mode names wrong")
	}
}

func TestBudgetRespected(t *testing.T) {
	budget := int64(30_000)
	f := New(baselineConfig(8, budget))
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The final cost may overshoot by at most one program's trace.
	last := stats.Series[len(stats.Series)-1]
	if last.Cost > budget*2 {
		t.Fatalf("budget wildly overshot: %d vs %d", last.Cost, budget)
	}
}

func BenchmarkFuzzLoopBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(baselineConfig(uint64(i), 50_000)).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMinimizeCorpusShrinksEntries(t *testing.T) {
	cfgPlain := baselineConfig(21, 150_000)
	plain, err := New(cfgPlain).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfgMin := baselineConfig(21, 150_000)
	cfgMin.MinimizeCorpus = true
	fMin := New(cfgMin)
	minStats, err := fMin.Run()
	if err != nil {
		t.Fatal(err)
	}
	avg := func(s *Stats, f *Fuzzer) float64 {
		total := 0
		entries := f.Corpus().Entries()
		for _, e := range entries {
			total += len(e.Prog.Calls)
		}
		if len(entries) == 0 {
			return 0
		}
		return float64(total) / float64(len(entries))
	}
	_ = plain
	fPlain := New(cfgPlain)
	plainStats, err := fPlain.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = plainStats
	if a, b := avg(minStats, fMin), avg(plainStats, fPlain); a >= b {
		t.Fatalf("minimized corpus avg %.2f calls not smaller than plain %.2f", a, b)
	}
	// Minimized entries must all be valid.
	for _, e := range fMin.Corpus().Entries() {
		if err := e.Prog.Validate(); err != nil {
			t.Fatalf("minimized entry invalid: %v", err)
		}
	}
}
