package fuzzer

import (
	"os"
	"sync"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
)

// benchEnv caches the kernel build shared by the fuzz-loop benchmarks.
var benchEnv struct {
	once sync.Once
	k    *kernel.Kernel
	an   *cfa.Analysis
}

func benchKernel(b *testing.B) (*kernel.Kernel, *cfa.Analysis) {
	benchEnv.once.Do(func() {
		benchEnv.k = kernel.MustBuild("6.8")
		benchEnv.an = cfa.New(benchEnv.k)
	})
	return benchEnv.k, benchEnv.an
}

// benchCampaign runs one small Syzkaller-mode campaign (the fuzz loop with
// no inference in the way, so the measurement isolates the mutate→exec→
// triage hot path).
func benchCampaign(b *testing.B, cfg Config) {
	k, an := benchKernel(b)
	cfg.Mode = ModeSyzkaller
	cfg.Kernel = k
	cfg.An = an
	cfg.Seed = 1
	cfg.Budget = 200_000
	g := prog.NewGenerator(k.Target)
	r := rng.New(cfg.Seed + 0x5eed)
	for i := 0; i < 10; i++ {
		cfg.SeedCorpus = append(cfg.SeedCorpus, g.Generate(r, 2+r.Intn(3)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignObsOff is the zero-overhead guard's subject: the fuzz
// loop with observability disabled must match the pre-obs fuzz loop.
// OBSERVABILITY.md records the committed pre-PR baseline this is compared
// against.
func BenchmarkCampaignObsOff(b *testing.B) {
	benchCampaign(b, Config{})
}

// BenchmarkCampaignObsOn measures the fully instrumented fuzz loop
// (registry + journal attached), quantifying the enabled-path cost.
func BenchmarkCampaignObsOn(b *testing.B) {
	benchCampaign(b, Config{
		Metrics: obs.NewRegistry(),
		Journal: obs.NewJournal(obs.DefaultJournalCap),
	})
}

// guardCampaign is one timed campaign run for the overhead guard.
func guardCampaign(t *testing.T, cfg Config) time.Duration {
	t.Helper()
	cfg.Mode = ModeSyzkaller
	cfg.Kernel = testKernel
	cfg.An = testAn
	cfg.Seed = 1
	cfg.Budget = 200_000
	cfg.SeedCorpus = seedCorpus(10, cfg.Seed+0x5eed)
	start := time.Now()
	if _, err := New(cfg).Run(); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestObsOverheadGuard is the CI zero-overhead guard. Cross-machine ns/op
// is too noisy to compare against a committed absolute baseline, so the
// guard compares obs-on against obs-off in the same process — a
// machine-stable relative bound that fails if either the disabled path
// grows real work (off-time rises toward on-time's budget) or the enabled
// path stops being cheap. Gated behind SNOWPLOW_OBS_GUARD=1 so ordinary
// `go test` runs are not timing-sensitive; see OBSERVABILITY.md for the
// committed dev-machine before/after numbers backing the 2% criterion.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("SNOWPLOW_OBS_GUARD") == "" {
		t.Skip("set SNOWPLOW_OBS_GUARD=1 to run the timing guard")
	}
	const rounds = 5
	best := func(cfgFor func() Config) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			if d := guardCampaign(t, cfgFor()); d < min {
				min = d
			}
		}
		return min
	}
	off := best(func() Config { return Config{} })
	on := best(func() Config {
		return Config{Metrics: obs.NewRegistry(), Journal: obs.NewJournal(obs.DefaultJournalCap)}
	})
	t.Logf("obs off: %v, obs on: %v (%.1f%% overhead)",
		off, on, 100*float64(on-off)/float64(off))
	if float64(on) > 1.25*float64(off) {
		t.Fatalf("instrumented fuzz loop %v is more than 25%% over disabled %v", on, off)
	}
}
