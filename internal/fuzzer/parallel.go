// Parallel campaign engine: N simulated VMs run the generate→exec→trace→
// triage loop concurrently against a shared corpus.
//
// Determinism is the design constraint. A naive shared-corpus race would
// make every multi-VM campaign irreproducible, so the engine runs the fleet
// in lockstep epochs:
//
//   - At an epoch start each VM snapshots the shared corpus (an epochView:
//     the frozen entry list, a private clone of the total cover, and the
//     VM's own intra-epoch additions).
//   - VMs then fuzz independently for a bounded slice of simulated cost
//     (Config.SyncEvery) with no shared mutable state; prediction replies
//     are harvested only at the barrier (deferHarvest), so inference
//     latency never leaks wall-clock ordering into the campaign.
//   - At the barrier a reconciler merges each VM's additions into the
//     shared corpus in ascending VM order with a global sequence counter,
//     so acceptance (which program wins a text-dedup tie, which edges count
//     as new) is a pure function of (epoch, VM index, local order) — never
//     of goroutine scheduling.
//
// The result: VMs=N campaigns are bit-reproducible for a fixed seed, VMs=1
// runs the original sequential loop unchanged, and the only wall-clock
// observable is the per-VM QueueWaitNs counter (explicitly excluded from
// the determinism guarantee).

package fuzzer

import (
	"fmt"
	"sync"
	"time"

	"github.com/repro/snowplow/internal/corpus"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/mutation"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/online"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/trace"
)

// vmSeedStride decorrelates per-VM RNG streams (the SplitMix64 increment);
// VM 0's stream equals the sequential campaign's stream.
const vmSeedStride = 0x9e3779b97f4a7c15

// localEntry is one program a VM accepted during the current epoch, pending
// reconciliation.
type localEntry struct {
	e      *corpus.Entry
	seeded bool // unconditional insert (seed pass), not new-edge gated
}

// epochView is a VM's frozen window onto the campaign for one epoch: the
// shared snapshot taken at the barrier plus the VM's own additions. All
// mutation is VM-private, so mid-epoch the fleet shares nothing mutable.
type epochView struct {
	corp   *corpus.Corpus
	base   []*corpus.Entry // shared entries frozen at epoch start
	total  *trace.Cover    // shared total cover clone + local merges
	blocks trace.BlockSet  // shared covered blocks clone + local merges
	locals []localEntry
	byText map[string]bool // local text dedup for this epoch
}

func newEpochView(corp *corpus.Corpus, blocks *trace.BlockSet) *epochView {
	return &epochView{
		corp:   corp,
		base:   corp.Entries(),
		total:  corp.TotalCover(),
		blocks: blocks.Clone(),
		byText: map[string]bool{},
	}
}

func (v *epochView) Choose(r *rng.Rand) *corpus.Entry {
	n := len(v.base) + len(v.locals)
	if n == 0 {
		return nil
	}
	i := r.Intn(n)
	if i < len(v.base) {
		return v.base[i]
	}
	return v.locals[i-len(v.base)].e
}

func (v *epochView) Add(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID) int {
	return v.add(p, cover, blocks, traces, false)
}

func (v *epochView) Seed(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID) bool {
	return v.add(p, cover, blocks, traces, true) > 0
}

// add applies the corpus acceptance policy against the VM's epoch-local
// view. Accepted entries are cloned off the caller's scratch buffers and
// queued for the reconciler; cross-VM duplicates are resolved at the
// barrier, not here.
func (v *epochView) add(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID, seeded bool) int {
	text := p.Serialize()
	if v.byText[text] || v.corp.HasText(text) {
		return 0
	}
	n := v.total.Merge(cover)
	if n == 0 && !seeded {
		return 0
	}
	v.blocks.Merge(blocks)
	v.byText[text] = true
	v.locals = append(v.locals, localEntry{
		e: &corpus.Entry{
			Prog:   p,
			Cover:  cover.Clone(),
			Blocks: blocks.Clone(),
			Traces: traces,
			Text:   text,
		},
		seeded: seeded,
	})
	if seeded && n == 0 {
		return 1 // inserted; Seed only needs a truthy result
	}
	return n
}

func (v *epochView) NewEdges(cover *trace.Cover) int { return v.total.NewEdges(cover) }
func (v *epochView) TotalCover() *trace.Cover        { return v.total }
func (v *epochView) HasBlock(b kernel.BlockID) bool  { return v.blocks.Has(b) }

// runParallel executes the campaign on a fleet of cfg.VMs simulated VMs in
// lockstep epochs, reconciling results deterministically.
func (f *Fuzzer) runParallel() (*Stats, error) {
	nvm := f.cfg.VMs
	per := f.cfg.Budget / int64(nvm)
	syncEvery := f.cfg.SyncEvery
	if syncEvery <= 0 {
		syncEvery = per / 32
	}
	if syncEvery <= 0 {
		syncEvery = 1
	}

	vmStats := make([]Stats, nvm)
	workers := make([]*worker, nvm)
	for i := range workers {
		w := &worker{
			cfg:          &f.cfg,
			id:           i,
			r:            rng.New(f.cfg.Seed + vmSeedStride*uint64(i)),
			exe:          exec.NewMachine(f.cfg.Kernel, i),
			mut:          mutation.NewMutator(f.cfg.Kernel.Target),
			gen:          prog.NewGenerator(f.cfg.Kernel.Target),
			preds:        map[*corpus.Entry]*entryPrediction{},
			crashSeen:    map[string]*CrashReport{},
			stats:        &vmStats[i],
			budget:       per,
			deferHarvest: true,
			scratchCover: trace.NewCover(),
			m:            f.metrics,
			jn:           f.cfg.Journal,
			trackKeys:    f.cacheSim != nil,
		}
		if i == 0 {
			w.budget += f.cfg.Budget - per*int64(nvm) // remainder to VM 0
		}
		workers[i] = w
	}
	var gauges []*vmGauges
	if f.cfg.Metrics != nil {
		gauges = make([]*vmGauges, nvm)
		for i := range gauges {
			gauges[i] = newVMGauges(f.cfg.Metrics, i)
		}
	}

	// Seed pass: VM 0 executes the seed corpus directly into the shared
	// corpus before the first epoch, so every VM's first snapshot already
	// contains the seeds (as in the sequential campaign).
	workers[0].view = &sharedView{corp: f.corp, blocks: &f.globalBlocks}
	for _, p := range f.cfg.SeedCorpus {
		if err := workers[0].seed(p); err != nil {
			return nil, err
		}
	}
	workers[0].jevent(obs.EventSeed, int64(f.corp.Len()), "")

	nextSample := f.cfg.SampleEvery
	var seq int64     // reconciler sequence counter (merge-order audit trail)
	var epochNo int64 // barrier count (journal epoch numbering)
	for {
		var active []*worker
		for _, w := range workers {
			if w.cost < w.budget {
				active = append(active, w)
			}
		}
		if len(active) == 0 {
			break
		}

		// Run the epoch: refresh views, drain last epoch's prediction
		// replies, fuzz one SyncEvery slice of simulated cost.
		epochNo++
		epochStart := time.Now()
		var wg sync.WaitGroup
		for _, w := range active {
			w.view = newEpochView(f.corp, &f.globalBlocks)
			w.epoch = epochNo
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				t0 := time.Now()
				w.harvestPending()
				w.runEpoch(syncEvery)
				w.epochElapsed = time.Since(t0)
			}(w)
		}
		wg.Wait()
		barrier := time.Since(epochStart)
		for _, w := range active {
			if w.err != nil {
				return nil, w.err
			}
			w.epochs++
			if wait := barrier - w.epochElapsed; wait > 0 {
				w.queueWaitNs += wait.Nanoseconds()
			}
			if f.metrics != nil {
				f.metrics.epochs.Inc()
				f.metrics.epochDur.Observe(w.epochElapsed.Nanoseconds())
				if wait := barrier - w.epochElapsed; wait > 0 {
					f.metrics.barrierWait.Observe(wait.Nanoseconds())
				}
			}
		}

		// Fold each VM's buffered cache keys into the shared simulation in
		// ascending VM order (submission order within a VM), pinning the
		// hit/miss split to reconcile order instead of wall-clock arrival.
		if f.cacheSim != nil {
			for _, w := range active {
				for _, k := range w.keyBuf {
					f.cacheSim.Touch(k)
				}
				w.keyBuf = w.keyBuf[:0]
			}
		}

		// Reconcile in ascending VM order: each VM's local additions are
		// applied in their local order under a global sequence number, so
		// corpus contents are a pure function of (epoch, VM, order).
		for _, w := range active {
			ev := w.view.(*epochView)
			for _, la := range ev.locals {
				seq++
				if la.seeded {
					if f.corp.SeedEntry(la.e) {
						f.globalBlocks.Merge(la.e.Blocks)
					}
					continue
				}
				if n := f.corp.AddEntry(la.e); n > 0 {
					f.globalBlocks.Merge(la.e.Blocks)
					w.reconciled += int64(n)
				}
			}
		}

		// Flush each VM's buffered journal events in ascending VM order —
		// the same deterministic order the corpus merge just used — then
		// close the epoch with a fleet-level barrier event.
		if f.cfg.Journal != nil {
			for _, w := range active {
				for _, e := range w.events {
					f.cfg.Journal.Record(e)
				}
				w.events = w.events[:0]
			}
			f.cfg.Journal.Record(obs.Event{
				Kind: obs.EventEpoch, VM: -1, Epoch: epochNo,
				Value:  int64(f.corp.Len()),
				Detail: fmt.Sprintf("edges=%d", f.corp.TotalEdges()),
			})
		}

		// Online continual learning runs strictly after the merge and the
		// epoch event: apply a due swap, then kick off the next retrain.
		if f.online != nil {
			if err := f.onlineBarrier(epochNo, workers); err != nil {
				return nil, err
			}
		}

		// Sample the coverage series against fleet simulated time (the sum
		// of per-VM costs), evaluated only at barriers where the shared
		// total is well-defined.
		var fleetCost int64
		for _, w := range workers {
			fleetCost += w.cost
		}
		if f.cfg.SampleEvery > 0 {
			for nextSample <= fleetCost {
				f.stats.Series = append(f.stats.Series, Point{Cost: nextSample, Edges: f.corp.TotalEdges()})
				nextSample += f.cfg.SampleEvery
			}
		}

		// Refresh the live per-VM and fleet gauges for mid-campaign
		// /metrics scrapes.
		if f.metrics != nil {
			f.metrics.cost.Set(fleetCost)
			for i, w := range workers {
				gauges[i].execs.Set(vmStats[i].Executions)
				gauges[i].newEdges.Set(w.reconciled)
				gauges[i].queries.Set(vmStats[i].PMMQueries)
				gauges[i].queueWaitNs.Set(w.queueWaitNs)
			}
		}
	}

	// Flush any events still buffered (possible when the budget is
	// exhausted before the first barrier), in VM order as always.
	if f.cfg.Journal != nil {
		for _, w := range workers {
			for _, e := range w.events {
				f.cfg.Journal.Record(e)
			}
			w.events = w.events[:0]
		}
	}

	// Blocking-drain outstanding replies (not the racy select-default
	// drain): whether a late reply counts as a prediction or a failure must
	// depend on its content, not on wall-clock arrival order.
	for _, w := range workers {
		w.harvestPending()
	}

	// Fold any cache keys still buffered (mirrors the journal flush above)
	// and wait out an in-flight retrain: its swap is never applied — the
	// campaign is over — but the goroutine must not outlive the run.
	if f.cacheSim != nil {
		for _, w := range workers {
			for _, k := range w.keyBuf {
				f.cacheSim.Touch(k)
			}
			w.keyBuf = w.keyBuf[:0]
		}
	}
	if f.online != nil {
		f.online.Wait()
	}
	f.mergeParallelStats(workers, vmStats)
	return &f.stats, nil
}

// onlineBarrier applies the continual-learning schedule at one epoch
// barrier: hot-swap a due checkpoint generation, then kick off the next
// retrain if this barrier is a kickoff point. Both outcomes are journaled
// here with their canonical payloads (Swap.Detail, online.KickoffDetail),
// and the cluster coordinator journals byte-identical records at the same
// epochs, so swap-for-swap replay holds across engines.
func (f *Fuzzer) onlineBarrier(epochNo int64, workers []*worker) error {
	if sw := f.online.SwapDue(epochNo); sw != nil {
		// Drain every VM's in-flight predictions before swapping so each
		// query is answered by the model generation of its submission
		// epoch. Harvested replies stay invisible until the VM's next
		// epoch (deferHarvest), so the drain moves no information forward.
		for _, w := range workers {
			w.harvestPending()
		}
		if sw.Accepted {
			if _, err := f.swapper.SwapModel(sw.Model, sw.Version); err != nil {
				return fmt.Errorf("fuzzer: hot-swap model v%d: %w", sw.Version, err)
			}
			f.stats.ModelSwaps++
			f.stats.ModelVersion = sw.Version
		} else {
			f.stats.ModelSwapsSkipped++
		}
		f.cfg.Journal.Record(obs.Event{
			Kind: obs.EventModelSwap, VM: -1, Epoch: epochNo,
			Value: sw.Version, Detail: sw.Detail(),
		})
	}
	if f.online.ShouldKickoff(epochNo, f.corp.Len()) {
		entries := f.corp.Entries()
		bases := make([]*prog.Prog, len(entries))
		for i, e := range entries {
			bases[i] = e.Prog
		}
		v := f.online.Kickoff(epochNo, bases)
		f.stats.ModelRetrains++
		f.cfg.Journal.Record(obs.Event{
			Kind: obs.EventModelTrain, VM: -1, Epoch: epochNo,
			Value: v, Detail: online.KickoffDetail(len(bases)),
		})
	}
	return nil
}

// runEpoch fuzzes until the worker has consumed one SyncEvery slice of its
// budget (or the budget is exhausted).
func (w *worker) runEpoch(syncEvery int64) {
	limit := w.cost + syncEvery
	if limit > w.budget {
		limit = w.budget
	}
	for w.cost < limit {
		if err := w.step(); err != nil {
			w.err = err
			return
		}
	}
}

// mergeParallelStats folds the per-VM outcomes into the campaign Stats in
// ascending VM order: sums for the scalar counters, title-deduplicated
// crash reports, and one VMStat per VM.
func (f *Fuzzer) mergeParallelStats(workers []*worker, vmStats []Stats) {
	var fleet int64
	for i, w := range workers {
		s := &vmStats[i]
		f.stats.Executions += s.Executions
		f.stats.PMMQueries += s.PMMQueries
		f.stats.PMMPredictions += s.PMMPredictions
		f.stats.PMMFailed += s.PMMFailed
		f.stats.PMMShed += s.PMMShed
		f.stats.PMMInvalidSlots += s.PMMInvalidSlots
		f.stats.DegradedSteps += s.DegradedSteps
		f.stats.Yield.add(s.Yield)
		for _, cr := range s.Crashes {
			dup := false
			for _, have := range f.stats.Crashes {
				if have.Spec.Title == cr.Spec.Title {
					dup = true
					break
				}
			}
			if !dup {
				f.stats.Crashes = append(f.stats.Crashes, cr)
			}
		}
		f.stats.VMs = append(f.stats.VMs, VMStat{
			VM:          i,
			Executions:  s.Executions,
			NewEdges:    w.reconciled,
			Queries:     s.PMMQueries,
			Epochs:      w.epochs,
			QueueWaitNs: w.queueWaitNs,
		})
		fleet += w.cost
	}
	f.stats.CorpusSize = f.corp.Len()
	f.stats.FinalEdges = f.corp.TotalEdges()
	f.fillCacheStats()
	if len(f.stats.Series) == 0 || f.stats.Series[len(f.stats.Series)-1].Cost < fleet {
		f.stats.Series = append(f.stats.Series, Point{Cost: fleet, Edges: f.stats.FinalEdges})
	}
}
