package fuzzer

import (
	"reflect"
	"testing"

	"github.com/repro/snowplow/internal/faultinject"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

func newFaultyServer(t testing.TB, opts serve.Options) *serve.Server {
	t.Helper()
	m := pmm.NewModel(rng.New(9), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	return serve.NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn), opts)
}

// TestSnowplowSurvivesFaultyServing runs the asynchronous integration
// against a 30% fault rate: the campaign must finish, find coverage, and
// account for serving failures. Run with -race: this is the async fuzzer
// window talking to concurrent dispatchers.
func TestSnowplowSurvivesFaultyServing(t *testing.T) {
	srv := newFaultyServer(t, serve.Options{
		Fault: &faultinject.Model{Seed: 31, DropProb: 0.1, TransientProb: 0.1, CorruptProb: 0.1},
	})
	defer srv.Close()
	cfg := baselineConfig(33, 300_000)
	cfg.Mode = ModeSnowplow
	cfg.Server = srv
	stats, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalEdges == 0 {
		t.Fatal("no coverage under faulty serving")
	}
	if stats.PMMQueries == 0 {
		t.Fatal("no queries issued")
	}
	srv.Close() // quiesce in-flight dispatchers so the accounting is final
	ss := srv.Stats()
	if ss.InjDropped+ss.InjTransient+ss.InjCorrupt == 0 {
		t.Fatal("fault model injected nothing")
	}
	if ss.Succeeded+ss.Failed != ss.Queries {
		t.Fatalf("serving stats do not add up: %d+%d != %d", ss.Succeeded, ss.Failed, ss.Queries)
	}
}

// TestDegradedModeActivatesAndSheds drives serving fully down: the fuzzer
// must notice unhealthy serving, raise its fallback probability, shed
// pending queries, and keep fuzzing on random localization.
func TestDegradedModeActivatesAndSheds(t *testing.T) {
	srv := newFaultyServer(t, serve.Options{
		MaxRetries:       -1,
		Fault:            &faultinject.Model{Seed: 5, TransientProb: 1},
		HealthMinSamples: 4,
	})
	defer srv.Close()
	cfg := baselineConfig(34, 300_000)
	cfg.Mode = ModeSnowplow
	cfg.Server = srv
	stats, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalEdges == 0 {
		t.Fatal("degraded campaign found no coverage")
	}
	if stats.DegradedSteps == 0 {
		t.Fatal("fuzzer never entered degraded mode against a dead server")
	}
	if stats.PMMQueries == 0 {
		t.Fatal("no queries issued before degradation")
	}
	// A failed reply is either harvested (PMMFailed) or abandoned by the
	// degraded-mode shed (PMMShed); against a dead server at least one of
	// the two must fire.
	if stats.PMMFailed+stats.PMMShed == 0 {
		t.Fatal("no failed or shed queries recorded against a fully-transient server")
	}
	if stats.PMMPredictions != 0 {
		t.Fatalf("%d predictions from a server that can only fail", stats.PMMPredictions)
	}
	if srv.Healthy() {
		t.Fatal("fully-transient server reports healthy after the campaign")
	}
}

// TestCorruptPredictionsNeverCrashMutator runs with every prediction
// corrupted (out-of-range slots): the sanitizer must reject them and the
// campaign must complete on fallback mutations.
func TestCorruptPredictionsNeverCrashMutator(t *testing.T) {
	srv := newFaultyServer(t, serve.Options{
		Fault: &faultinject.Model{Seed: 8, CorruptProb: 1},
	})
	defer srv.Close()
	cfg := baselineConfig(35, 200_000)
	cfg.Mode = ModeSnowplow
	cfg.Server = srv
	// Synchronous integration: every guided round consumes a (corrupt)
	// prediction, independent of host speed.
	cfg.SyncInference = true
	stats, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalEdges == 0 {
		t.Fatal("no coverage")
	}
	if stats.PMMInvalidSlots == 0 {
		t.Fatal("sanitizer rejected nothing although every prediction was corrupt")
	}
}

// faultyCampaign is the determinism property test's fixture: Snowplow with
// an active fault model, synchronous inference (the async window races
// against wall clock by design, §3.4), retries and seeded backoff engaged.
func faultyCampaign(seed uint64) (*Stats, serve.Stats) {
	m := pmm.NewModel(rng.New(9), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	srv := serve.NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn), serve.Options{
		Workers: 2,
		Fault: &faultinject.Model{
			Seed: seed + 0xfa, DropProb: 0.2, TransientProb: 0.2, CorruptProb: 0.1,
		},
	})
	defer srv.Close()
	cfg := baselineConfig(seed, 250_000)
	cfg.Mode = ModeSnowplow
	cfg.Server = srv
	cfg.SyncInference = true
	stats, err := New(cfg).Run()
	if err != nil {
		panic(err)
	}
	return stats, srv.Stats()
}

// TestDeterminismWithActiveFaultModel is the seeded-backoff guard: two
// campaigns with identical Config — including an active fault model — must
// produce byte-identical coverage time series and identical stats. Any
// wall-clock leakage into fault planning, retry jitter, or degradation
// decisions breaks this test.
func TestDeterminismWithActiveFaultModel(t *testing.T) {
	a, sa := faultyCampaign(40)
	b, sb := faultyCampaign(40)

	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Fatal("coverage time series diverged between identical faulty campaigns")
	}
	if a.FinalEdges != b.FinalEdges || a.Executions != b.Executions || a.CorpusSize != b.CorpusSize {
		t.Fatalf("campaign outcomes diverged: %d/%d/%d vs %d/%d/%d",
			a.FinalEdges, a.Executions, a.CorpusSize, b.FinalEdges, b.Executions, b.CorpusSize)
	}
	if a.PMMQueries != b.PMMQueries || a.PMMPredictions != b.PMMPredictions ||
		a.PMMFailed != b.PMMFailed || a.PMMShed != b.PMMShed ||
		a.PMMInvalidSlots != b.PMMInvalidSlots || a.DegradedSteps != b.DegradedSteps {
		t.Fatalf("PMM accounting diverged:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(a.Yield, b.Yield) {
		t.Fatalf("yield breakdown diverged:\n%+v\n%+v", a.Yield, b.Yield)
	}
	if len(a.Crashes) != len(b.Crashes) {
		t.Fatalf("crash counts diverged: %d vs %d", len(a.Crashes), len(b.Crashes))
	}
	for i := range a.Crashes {
		if a.Crashes[i].Spec.Title != b.Crashes[i].Spec.Title ||
			a.Crashes[i].ProgText != b.Crashes[i].ProgText ||
			a.Crashes[i].Cost != b.Crashes[i].Cost {
			t.Fatalf("crash %d diverged", i)
		}
	}
	// The serving side must replay identically too (modulo wall-clock
	// latency metrics).
	if sa.Queries != sb.Queries || sa.Succeeded != sb.Succeeded || sa.Failed != sb.Failed ||
		sa.Retries != sb.Retries || sa.Timeouts != sb.Timeouts ||
		sa.InjDropped != sb.InjDropped || sa.InjTransient != sb.InjTransient ||
		sa.InjCorrupt != sb.InjCorrupt {
		t.Fatalf("serving counters diverged:\n%+v\n%+v", sa, sb)
	}
	// And a different fault seed must actually change the campaign,
	// otherwise the property above is vacuous.
	c, _ := faultyCampaign(41)
	if reflect.DeepEqual(a.Series, c.Series) && a.PMMFailed == c.PMMFailed {
		t.Fatal("different seeds produced identical campaigns; fault model inert?")
	}
}

func TestFallbackProbRaisedWhenUnhealthy(t *testing.T) {
	srv := newFaultyServer(t, serve.Options{
		MaxRetries:       -1,
		Fault:            &faultinject.Model{Seed: 6, TransientProb: 1},
		HealthMinSamples: 2,
	})
	defer srv.Close()
	cfg := baselineConfig(36, 1000)
	cfg.Mode = ModeSnowplow
	cfg.Server = srv
	cfg.FallbackProb = 0.1
	cfg.DegradedFallbackProb = 0.95
	f := New(cfg)
	// Drive the server unhealthy by hand; a fully-transient model fails
	// every query before it reaches the worker pool.
	for i := 0; i < 8; i++ {
		srv.Infer(serve.Query{Prog: cfg.SeedCorpus[0], Traces: nil, Targets: nil})
	}
	if srv.Healthy() {
		t.Skip("server still healthy; health window larger than expected")
	}
	if got := f.fallbackProb(); got != 0.95 {
		t.Fatalf("degraded fallback prob = %v, want 0.95", got)
	}
	if f.stats.DegradedSteps != 1 {
		t.Fatalf("degraded steps = %d", f.stats.DegradedSteps)
	}
}
