package fuzzer

import (
	"reflect"
	"testing"

	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

// zeroQueueWait clears the only field the determinism guarantee excludes,
// so full-struct comparisons work: per-VM queue waits are wall clock.
// Everything else — including the graph-cache hit/miss split, which the
// campaign-side LRU simulation pins to reconcile order — must be
// bit-identical.
func zeroQueueWait(s *Stats) *Stats {
	for i := range s.VMs {
		s.VMs[i].QueueWaitNs = 0
	}
	return s
}

func runParallelCampaign(t *testing.T, cfg Config) (*Stats, *Fuzzer) {
	t.Helper()
	f := New(cfg)
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats, f
}

// TestParallelSingleVMMatchesDefault pins that VMs=1 is the sequential
// campaign: setting the flag explicitly must change nothing at all.
func TestParallelSingleVMMatchesDefault(t *testing.T) {
	a, _ := runParallelCampaign(t, baselineConfig(31, 150_000))
	cfg := baselineConfig(31, 150_000)
	cfg.VMs = 1
	b, _ := runParallelCampaign(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("VMs=1 campaign diverged from the default sequential campaign")
	}
}

// TestParallelReproducibleSyzkaller is the fleet determinism guarantee: a
// 4-VM campaign must reproduce bit-for-bit (modulo the wall-clock
// QueueWaitNs counter) across runs with the same seed, regardless of how
// the runtime schedules the VM goroutines.
func TestParallelReproducibleSyzkaller(t *testing.T) {
	cfg := baselineConfig(32, 300_000)
	cfg.VMs = 4
	a, fa := runParallelCampaign(t, cfg)
	cfg2 := baselineConfig(32, 300_000)
	cfg2.VMs = 4
	b, fb := runParallelCampaign(t, cfg2)
	if !reflect.DeepEqual(zeroQueueWait(a), zeroQueueWait(b)) {
		t.Fatalf("4-VM campaign not reproducible:\nrun1: edges=%d execs=%d corpus=%d crashes=%d\nrun2: edges=%d execs=%d corpus=%d crashes=%d",
			a.FinalEdges, a.Executions, a.CorpusSize, len(a.Crashes),
			b.FinalEdges, b.Executions, b.CorpusSize, len(b.Crashes))
	}
	ea, eb := fa.Corpus().Entries(), fb.Corpus().Entries()
	if len(ea) != len(eb) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].Text != eb[i].Text {
			t.Fatalf("corpus entry %d differs:\n%s\nvs\n%s", i, ea[i].Text, eb[i].Text)
		}
	}
}

// TestParallelReproducibleSnowplow extends the guarantee to the async
// inference path: prediction replies are harvested only at epoch barriers,
// so the PMM query/prediction schedule must also be a pure function of the
// seed.
func TestParallelReproducibleSnowplow(t *testing.T) {
	run := func() *Stats {
		m := pmm.NewModel(rng.New(77), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
		srv := serve.NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn).WithCache(256), serve.Options{
			Workers:   2,
			BatchSize: 4,
		})
		defer srv.Close()
		cfg := baselineConfig(33, 300_000)
		cfg.Mode = ModeSnowplow
		cfg.Server = srv
		cfg.VMs = 4
		stats, _ := runParallelCampaign(t, cfg)
		return stats
	}
	a, b := run(), run()
	if a.PMMQueries == 0 {
		t.Fatal("parallel snowplow campaign issued no PMM queries")
	}
	// The simulated hit/miss split is part of the DeepEqual comparison
	// below; its total must also account for exactly one lookup per query.
	if got := a.PMMCacheHits + a.PMMCacheMisses; got != a.PMMQueries {
		t.Fatalf("cache hits+misses = %d, want %d (one lookup per query)", got, a.PMMQueries)
	}
	a, b = zeroQueueWait(a), zeroQueueWait(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("4-VM snowplow campaign not reproducible:\nrun1: edges=%d execs=%d queries=%d preds=%d\nrun2: edges=%d execs=%d queries=%d preds=%d",
			a.FinalEdges, a.Executions, a.PMMQueries, a.PMMPredictions,
			b.FinalEdges, b.Executions, b.PMMQueries, b.PMMPredictions)
	}
}

// TestParallelFleetSanity checks the fleet actually fans out: every VM
// executes work, per-VM counters sum to the campaign totals, and coverage
// is in the same regime as a sequential campaign with the same budget.
func TestParallelFleetSanity(t *testing.T) {
	cfg := baselineConfig(34, 400_000)
	cfg.VMs = 4
	stats, _ := runParallelCampaign(t, cfg)
	if len(stats.VMs) != 4 {
		t.Fatalf("expected 4 VM stat entries, got %d", len(stats.VMs))
	}
	var execs, newEdges int64
	for _, vm := range stats.VMs {
		if vm.Executions == 0 {
			t.Fatalf("VM %d executed nothing", vm.VM)
		}
		if vm.Epochs == 0 {
			t.Fatalf("VM %d ran no epochs", vm.VM)
		}
		execs += vm.Executions
		newEdges += vm.NewEdges
	}
	if execs != stats.Executions {
		t.Fatalf("per-VM executions %d != campaign total %d", execs, stats.Executions)
	}
	if newEdges == 0 {
		t.Fatal("no VM contributed reconciled new edges")
	}
	seq, _ := runParallelCampaign(t, baselineConfig(34, 400_000))
	if stats.FinalEdges < seq.FinalEdges/2 {
		t.Fatalf("parallel coverage collapsed: %d vs sequential %d", stats.FinalEdges, seq.FinalEdges)
	}
	for i := 1; i < len(stats.Series); i++ {
		if stats.Series[i].Edges < stats.Series[i-1].Edges {
			t.Fatalf("parallel series coverage decreased at %d", i)
		}
	}
}
