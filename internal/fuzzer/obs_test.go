package fuzzer

import (
	"reflect"
	"testing"

	"github.com/repro/snowplow/internal/obs"
)

// journaledCampaign runs one instrumented syzkaller-mode campaign and
// returns its stats, journal events, and final metric values. Syzkaller
// mode has no inference, so the campaign — and therefore the journal — is
// fully deterministic per (seed, vms).
func journaledCampaign(t *testing.T, seed uint64, vms int) (*Stats, []obs.Event, map[string]int64) {
	t.Helper()
	reg := obs.NewRegistry()
	jn := obs.NewJournal(obs.DefaultJournalCap)
	cfg := baselineConfig(seed, 300_000)
	cfg.VMs = vms
	cfg.Metrics = reg
	cfg.Journal = jn
	stats, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats, jn.Events(), reg.Values()
}

// TestJournalDeterministicSequential is the journal's core guarantee at
// VMs=1: two campaigns with the same seed record byte-identical event
// streams, sequence numbers included.
func TestJournalDeterministicSequential(t *testing.T) {
	_, a, _ := journaledCampaign(t, 71, 1)
	_, b, _ := journaledCampaign(t, 71, 1)
	if len(a) < 4 {
		t.Fatalf("journal too small to be meaningful: %d events", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sequential journal diverged: %d vs %d events", len(a), len(b))
	}
	if a[0].Kind != obs.EventCampaignStart || a[len(a)-1].Kind != obs.EventCampaignEnd {
		t.Fatalf("journal not bracketed: first=%s last=%s", a[0].Kind, a[len(a)-1].Kind)
	}
}

// TestJournalDeterministicParallel pins the parallel guarantee: at VMs=4
// the full event stream — including global sequence numbers — is identical
// run to run, because workers buffer events and the reconciler flushes them
// at epoch barriers in ascending VM order. Run under -race, this also
// proves the journal plumbing is race-clean.
func TestJournalDeterministicParallel(t *testing.T) {
	_, a, _ := journaledCampaign(t, 72, 4)
	_, b, _ := journaledCampaign(t, 72, 4)
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("parallel journal diverged at event %d:\n%+v\n%+v", i, a[i], b[i])
			}
		}
		t.Fatalf("parallel journal diverged in length: %d vs %d", len(a), len(b))
	}
	epochs := 0
	for _, e := range a {
		if e.Kind == obs.EventEpoch {
			epochs++
			if e.VM != -1 {
				t.Fatalf("epoch event from VM %d, want fleet-level -1", e.VM)
			}
		}
	}
	if epochs == 0 {
		t.Fatal("no epoch barrier events at VMs=4")
	}
}

// TestJournalPerVMSubsequencesStable checks the cross-fleet-size property:
// each VM's own event subsequence (kind, value, detail — not global seq or
// epoch numbering) is stable run to run at VMs=4.
func TestJournalPerVMSubsequencesStable(t *testing.T) {
	_, a, _ := journaledCampaign(t, 73, 4)
	_, b, _ := journaledCampaign(t, 73, 4)
	type key struct {
		kind   string
		value  int64
		detail string
	}
	perVM := func(evs []obs.Event) map[int][]key {
		out := map[int][]key{}
		for _, e := range evs {
			out[e.VM] = append(out[e.VM], key{e.Kind, e.Value, e.Detail})
		}
		return out
	}
	pa, pb := perVM(a), perVM(b)
	if len(pa) < 4 {
		t.Fatalf("events from only %d VMs", len(pa)-1)
	}
	if !reflect.DeepEqual(pa, pb) {
		t.Fatal("per-VM event subsequences diverged run to run")
	}
}

// TestMetricsMatchStats cross-checks the instrument bundle against the
// fuzzer's own Stats accounting: the registry is a second, independently
// maintained view of the same campaign and the two must agree.
func TestMetricsMatchStats(t *testing.T) {
	stats, events, vals := journaledCampaign(t, 74, 1)
	if vals["fuzzer_execs_total"] != stats.Executions {
		t.Fatalf("execs: metric %d, stats %d", vals["fuzzer_execs_total"], stats.Executions)
	}
	if got := vals["corpus_size"]; got != int64(stats.CorpusSize) {
		t.Fatalf("corpus size: metric %d, stats %d", got, stats.CorpusSize)
	}
	if got := vals["corpus_edges"]; got != int64(stats.FinalEdges) {
		t.Fatalf("edges: metric %d, stats %d", got, stats.FinalEdges)
	}
	if vals["fuzzer_crashes_total"] != int64(len(stats.Crashes)) {
		t.Fatalf("crashes: metric %d, stats %d", vals["fuzzer_crashes_total"], len(stats.Crashes))
	}
	classes := vals["fuzzer_execs_generate_total"] + vals["fuzzer_execs_randarg_total"] +
		vals["fuzzer_execs_guided_total"] + vals["fuzzer_execs_othermut_total"]
	if classes == 0 || classes > stats.Executions {
		t.Fatalf("yield classes sum %d vs executions %d", classes, stats.Executions)
	}
	if vals["fuzzer_exec_latency_ns_count"] != stats.Executions {
		t.Fatalf("exec latency observations %d != executions %d",
			vals["fuzzer_exec_latency_ns_count"], stats.Executions)
	}
	crashEvents := 0
	for _, e := range events {
		if e.Kind == obs.EventCrash {
			crashEvents++
		}
	}
	if crashEvents != len(stats.Crashes) {
		t.Fatalf("crash events %d != unique crashes %d", crashEvents, len(stats.Crashes))
	}
}

// TestMetricsDisabledLeavesStatsIdentical proves attaching observability
// does not perturb the campaign: same seed with and without instruments
// yields identical Stats.
func TestMetricsDisabledLeavesStatsIdentical(t *testing.T) {
	plain, err := New(baselineConfig(75, 300_000)).Run()
	if err != nil {
		t.Fatal(err)
	}
	instrumented, _, _ := journaledCampaign(t, 75, 1)
	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatal("attaching metrics/journal changed campaign results")
	}
}
