package fuzzer

import (
	"reflect"
	"testing"

	"github.com/repro/snowplow/internal/nn"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

// snowplowCampaign runs one synchronous-inference Snowplow campaign with
// the given performance knobs and returns its stats. SyncInference pins the
// query schedule to simulated time, so the outcome depends only on the
// seed — never on host speed, worker counts, or batching.
func snowplowCampaign(t *testing.T, seed uint64, nnWorkers, serveWorkers, batch int) *Stats {
	t.Helper()
	prev := nn.Workers()
	nn.SetWorkers(nnWorkers)
	defer nn.SetWorkers(prev)
	m := pmm.NewModel(rng.New(77), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	srv := serve.NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn).WithCache(256), serve.Options{
		Workers:   serveWorkers,
		BatchSize: batch,
	})
	defer srv.Close()
	cfg := baselineConfig(seed, 200_000)
	cfg.Mode = ModeSnowplow
	cfg.Server = srv
	cfg.SyncInference = true
	stats, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestCampaignDeterminismAcrossPerfKnobs is the PR's end-to-end determinism
// guarantee: the entire campaign outcome — coverage series, executions,
// crashes, PMM accounting — must be identical whether inference runs
// serial/unbatched or with a multi-worker MatMul pool, multiple serving
// workers, and micro-batching. Performance knobs change speed, not results.
func TestCampaignDeterminismAcrossPerfKnobs(t *testing.T) {
	base := snowplowCampaign(t, 55, 1, 1, 1)
	tuned := snowplowCampaign(t, 55, 4, 2, 8)
	if base.FinalEdges == 0 || base.PMMQueries == 0 {
		t.Fatal("baseline campaign did no PMM-guided work")
	}
	if !reflect.DeepEqual(base, tuned) {
		t.Fatalf("campaign diverged across performance knobs:\nworkers=1/batch=1: edges=%d execs=%d queries=%d preds=%d cacheHits=%d\nworkers=4/batch=8: edges=%d execs=%d queries=%d preds=%d cacheHits=%d",
			base.FinalEdges, base.Executions, base.PMMQueries, base.PMMPredictions, base.PMMCacheHits,
			tuned.FinalEdges, tuned.Executions, tuned.PMMQueries, tuned.PMMPredictions, tuned.PMMCacheHits)
	}
}

// TestCampaignDeterminismRepeatSameKnobs pins the weaker but also necessary
// property: the tuned configuration reproduces itself run to run.
func TestCampaignDeterminismRepeatSameKnobs(t *testing.T) {
	a := snowplowCampaign(t, 56, 4, 2, 8)
	b := snowplowCampaign(t, 56, 4, 2, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("tuned campaign not reproducible run to run")
	}
}
