// Online continual-learning determinism: a campaign that retrains and
// hot-swaps its model mid-flight must still replay bit-identically per
// seed — stats, corpus, and the journal including the SPMV model_train /
// model_swap records.

package fuzzer

import (
	"reflect"
	"testing"
	"time"

	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/online"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

// fastOnline is a schedule aggressive enough to resolve several swaps
// within a small test budget, with retrains kept cheap.
func fastOnline() *online.Config {
	return &online.Config{
		Every:            4,
		Lag:              1,
		MinCorpus:        2,
		MutationsPerBase: 4,
		TrainEpochs:      1,
		TrainBatch:       8,
	}
}

// runOnlineCampaign runs one online campaign from a fresh model and server
// (swaps mutate the server, so nothing is shared between runs).
func runOnlineCampaign(t *testing.T, seed uint64, budget int64, vms int) (*Stats, []obs.Event, []string) {
	t.Helper()
	m := pmm.NewModel(rng.New(77), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	srv := serve.NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn), serve.Options{
		Workers:   2,
		QueueSize: 256,
		Deadline:  30 * time.Second,
	})
	defer srv.Close()
	jn := obs.NewJournal(0)
	cfg := baselineConfig(seed, budget)
	cfg.Mode = ModeSnowplow
	cfg.Server = srv
	cfg.VMs = vms
	cfg.Online = fastOnline()
	cfg.Journal = jn
	f := New(cfg)
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, e := range f.Corpus().Entries() {
		texts = append(texts, e.Text)
	}
	return stats, jn.Events(), texts
}

// requireOnlineActivity asserts the schedule actually fired: at least one
// retrain kicked off and at least one swap resolved (applied or skipped),
// with matching journal records.
func requireOnlineActivity(t *testing.T, stats *Stats, events []obs.Event) {
	t.Helper()
	if stats.ModelRetrains == 0 {
		t.Fatal("campaign never kicked off a retrain")
	}
	if stats.ModelSwaps+stats.ModelSwapsSkipped == 0 {
		t.Fatal("campaign never resolved a swap at a barrier")
	}
	var trains, swaps int
	for _, e := range events {
		switch e.Kind {
		case obs.EventModelTrain:
			trains++
		case obs.EventModelSwap:
			swaps++
		}
	}
	if int64(trains) != stats.ModelRetrains {
		t.Fatalf("%d model_train events for %d retrains", trains, stats.ModelRetrains)
	}
	if int64(swaps) != stats.ModelSwaps+stats.ModelSwapsSkipped {
		t.Fatalf("%d model_swap events for %d resolved swaps", swaps, stats.ModelSwaps+stats.ModelSwapsSkipped)
	}
	if stats.ModelSwaps > 0 && stats.ModelVersion == 0 {
		t.Fatal("swaps applied but ModelVersion still 0")
	}
}

// TestOnlineReproducibleParallel is the tentpole determinism guarantee: a
// 4-VM campaign with mid-flight retraining and hot swaps replays
// bit-identically per seed — including the swap versions, gate decisions
// and SPMV journal payloads.
func TestOnlineReproducibleParallel(t *testing.T) {
	a, evA, corpA := runOnlineCampaign(t, 51, 300_000, 4)
	requireOnlineActivity(t, a, evA)
	b, evB, corpB := runOnlineCampaign(t, 51, 300_000, 4)
	if !reflect.DeepEqual(zeroQueueWait(a), zeroQueueWait(b)) {
		t.Fatalf("online campaign not reproducible:\nrun1: edges=%d execs=%d retrains=%d swaps=%d/%d v=%d\nrun2: edges=%d execs=%d retrains=%d swaps=%d/%d v=%d",
			a.FinalEdges, a.Executions, a.ModelRetrains, a.ModelSwaps, a.ModelSwapsSkipped, a.ModelVersion,
			b.FinalEdges, b.Executions, b.ModelRetrains, b.ModelSwaps, b.ModelSwapsSkipped, b.ModelVersion)
	}
	if !reflect.DeepEqual(evA, evB) {
		t.Fatalf("journals diverged: %d vs %d events", len(evA), len(evB))
	}
	if !reflect.DeepEqual(corpA, corpB) {
		t.Fatalf("corpora diverged: %d vs %d entries", len(corpA), len(corpB))
	}
}

// TestOnlineSingleVMRoutesThroughBarriers pins that VMs=1 online campaigns
// run the epoch-barrier engine (swaps need barriers) and replay
// bit-identically too.
func TestOnlineSingleVMRoutesThroughBarriers(t *testing.T) {
	a, evA, _ := runOnlineCampaign(t, 52, 200_000, 1)
	requireOnlineActivity(t, a, evA)
	b, evB, _ := runOnlineCampaign(t, 52, 200_000, 1)
	if !reflect.DeepEqual(zeroQueueWait(a), zeroQueueWait(b)) || !reflect.DeepEqual(evA, evB) {
		t.Fatal("single-VM online campaign not reproducible")
	}
}

// TestOnlineRequiresSnowplowAndSwapper: config validation for the online
// loop — it needs the learned-mutator mode and a hot-swappable server.
func TestOnlineRequiresSnowplowAndSwapper(t *testing.T) {
	cfg := baselineConfig(53, 10_000)
	cfg.Online = fastOnline()
	if _, err := New(cfg).Run(); err == nil {
		t.Fatal("online syzkaller campaign did not error")
	}
	srv := newServer(t)
	defer srv.Close()
	cfg = baselineConfig(54, 10_000)
	cfg.Mode = ModeSnowplow
	cfg.Server = noSwap{srv}
	cfg.Online = fastOnline()
	if _, err := New(cfg).Run(); err == nil {
		t.Fatal("online campaign over a non-swappable server did not error")
	}
}

// noSwap hides the server's swap surface, leaving a bare Inferrer.
type noSwap struct{ serve.Inferrer }
