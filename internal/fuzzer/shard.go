// Cluster seam: a Shard runs a subset of a campaign's VM workers against a
// local corpus replica and exports epoch deltas — the exact per-VM local
// additions, buffered journal events and post-epoch VM state that the
// single-host reconciler (parallel.go) consumes in-process. A coordinator
// (internal/cluster) merges the deltas of all shards in ascending VM order
// and broadcasts the accepted entries back, so a W-shard cluster replays
// the same merge schedule as a single host running Config.VMs workers: the
// corpus, coverage, journal and counters are bit-identical per seed.
//
// The seam also makes VMs portable. A VMState snapshot is everything a
// worker's future behavior depends on — mutation RNG, flaky-crash RNG,
// simulated cost, counters, crash dedup table and in-flight prediction
// window — so a VM captured at a barrier can be restored onto any shard
// (worker churn) or into a campaign checkpoint and continue bit-identically.
// The only serving-dependent escape hatch is the phantom-reply counter:
// cluster determinism, like the journal's, assumes fault-free inference
// serving (predictions are deterministic in the model, so resubmitting a
// pending query after restore yields the reply the lost VM would have
// received).

package fuzzer

import (
	"fmt"
	"sort"
	"sync"

	"github.com/repro/snowplow/internal/corpus"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/mutation"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
	"github.com/repro/snowplow/internal/trace"
)

// VMCounters are one VM's scalar campaign counters, round-tripped through
// checkpoints so a restored VM's final stats line matches the uninterrupted
// run.
type VMCounters struct {
	Executions      int64
	PMMQueries      int64
	PMMPredictions  int64
	PMMFailed       int64
	PMMShed         int64
	PMMInvalidSlots int64
	DegradedSteps   int64
	Yield           YieldStats
}

// CrashState is one deduplicated crash observation in wire/checkpoint form:
// the full crash spec plus the report fields, so a restored VM reproduces
// both its dedup table and its report list.
type CrashState struct {
	Title      string
	Category   string
	Detector   string
	KnownSince string
	Flaky      bool
	ProgText   string
	Cost       int64
}

// PredState is one entry of a VM's prediction window in wire form. Exactly
// one of Pending (query in flight; Targets is what it asked for) or a
// non-nil Slots (reply arrived, not yet consumed) is meaningful. Consumed
// predictions are omitted: an absent state and a consumed state both make
// the next pick of the entry resubmit an identical query. Local marks a
// prediction attached to an entry from the VM's own just-finished epoch
// (not yet merged); the coordinator resolves it against the merge outcome
// before the state becomes canonical.
type PredState struct {
	Text    string
	Local   bool
	Pending bool
	Targets []kernel.BlockID
	Slots   []prog.GlobalSlot
}

// VMState is the complete portable state of one VM worker, captured at an
// epoch barrier. Restoring it onto any shard whose replica matches the
// barrier's corpus resumes the VM bit-identically.
type VMState struct {
	VM        int
	RNG       [4]uint64 // mutation/scheduling RNG (rng.Rand.State)
	Flaky     [4]uint64 // executor flaky-crash RNG
	Execs     int64     // machine counters
	BlocksRun int64
	Cost      int64
	Budget    int64
	Epochs    int64
	// Reconciled is the VM's post-dedup new-edge yield. It is owned by the
	// coordinator (only the merge knows who won) and round-tripped here so
	// restored workers carry it into their final stats line.
	Reconciled int64
	// Phantom counts prediction replies owed to the VM whose base entries
	// died in a merge before the reply landed; see worker.phantom.
	Phantom int
	// QueueWaitNs is accumulated wall-clock barrier wait. Carried for the
	// stats line only; excluded from all determinism guarantees.
	QueueWaitNs int64
	Counters    VMCounters
	Crashes     []CrashState
	Preds       []PredState
}

// Local is one program a VM accepted during an epoch, in wire form: the
// serialized program and its per-call traces. Cover and block sets are
// recomputed on receipt (corpus.EntryFromTraces) — traces must travel
// because flaky crash blocks make re-execution nondeterministic.
type Local struct {
	Text   string
	Traces [][]kernel.BlockID
	Seeded bool
}

// VMDelta is one VM's contribution to an epoch barrier: its local corpus
// additions in acceptance order, its buffered journal events, and its
// post-epoch state.
type VMDelta struct {
	VM     int
	Locals []Local
	Events []obs.Event
	State  VMState
	// CrashBase is a wire-level transfer optimization: the number of
	// leading State.Crashes entries elided because the receiver already
	// holds them from the previous barrier (the per-VM crash table is
	// append-only, so the prior table is always an exact prefix). Zero
	// everywhere outside the cluster wire path; the cluster coordinator
	// re-prepends the elided prefix on receipt, so merged state never
	// sees a trimmed table.
	CrashBase int
}

// Accepted is one merge-accepted corpus entry in broadcast order. VM is the
// winning VM (-1 for checkpoint-snapshot replays, where no shard owns the
// entry); shards that own the winning VM splice their original *Entry back
// in, preserving the pointer identity the prediction cache keys on.
type Accepted struct {
	VM     int
	Seeded bool
	Text   string
	Traces [][]kernel.BlockID
}

// InitialVMState is the state of VM vm before a campaign starts: fresh RNG
// streams, zero counters, and the VM's share of the budget (VM 0 takes the
// division remainder, as in runParallel).
func InitialVMState(cfg Config, vm int) VMState {
	cfg = cfg.Normalized()
	per := cfg.Budget / int64(cfg.VMs)
	budget := per
	if vm == 0 {
		budget += cfg.Budget - per*int64(cfg.VMs)
	}
	return VMState{
		VM:     vm,
		RNG:    rng.New(cfg.Seed + vmSeedStride*uint64(vm)).State(),
		Flaky:  exec.InitialFlakyState(),
		Budget: budget,
	}
}

// Shard hosts a subset of a campaign's VM workers against a full local
// corpus replica. The coordinator drives it strictly in barrier steps:
// ApplyAccepted (sync the replica with the last merge), then RunEpoch
// (fuzz one slice, export deltas). A Shard is not safe for concurrent use
// by multiple drivers.
type Shard struct {
	cfg    Config
	corp   *corpus.Corpus
	blocks trace.BlockSet
	// byText maps replica entry text to the replica's pointer for that
	// entry, so VMState prediction windows can be re-attached on restore.
	byText  map[string]*corpus.Entry
	workers map[int]*worker
	// lastLocals keeps each owned VM's previous-epoch local entries until
	// the merge outcome arrives, so accepted entries that this shard's own
	// VM produced are spliced back with their original pointer identity.
	lastLocals map[int][]localEntry
	syncEvery  int64
}

// NewShard creates an empty shard for the campaign config. The config's
// Journal, when non-nil, acts purely as a flag: shard workers buffer their
// events for the coordinator and never record to a local journal, so any
// non-nil sentinel (e.g. obs.NewJournal(1)) enables event capture.
func NewShard(cfg Config) (*Shard, error) {
	cfg = cfg.Normalized()
	if cfg.Mode == ModeSnowplow && cfg.Server == nil {
		return nil, fmt.Errorf("fuzzer: shard in Snowplow mode requires an inference server")
	}
	if cfg.Kernel == nil {
		return nil, fmt.Errorf("fuzzer: shard requires a kernel")
	}
	per := cfg.Budget / int64(cfg.VMs)
	syncEvery := cfg.SyncEvery
	if syncEvery <= 0 {
		syncEvery = per / 32
	}
	if syncEvery <= 0 {
		syncEvery = 1
	}
	return &Shard{
		cfg:        cfg,
		corp:       corpus.New(),
		byText:     map[string]*corpus.Entry{},
		workers:    map[int]*worker{},
		lastLocals: map[int][]localEntry{},
		syncEvery:  syncEvery,
	}, nil
}

// Corpus exposes the shard's corpus replica (digest checks in tests).
func (s *Shard) Corpus() *corpus.Corpus { return s.corp }

// Owned returns the shard's VM ids in ascending order.
func (s *Shard) Owned() []int {
	ids := make([]int, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Restore adds one worker per VMState to the shard, resuming each VM
// exactly where its state was captured. The replica must already match the
// corpus the states were captured against (ApplyAccepted/ApplySnapshot
// first), or prediction windows cannot be re-attached.
func (s *Shard) Restore(states []VMState) error {
	for _, st := range states {
		if err := s.restoreWorker(st); err != nil {
			return err
		}
	}
	return nil
}

func (s *Shard) restoreWorker(st VMState) error {
	if _, dup := s.workers[st.VM]; dup {
		return fmt.Errorf("fuzzer: shard already hosts VM %d", st.VM)
	}
	stats := &Stats{
		Mode:            s.cfg.Mode,
		Executions:      st.Counters.Executions,
		PMMQueries:      st.Counters.PMMQueries,
		PMMPredictions:  st.Counters.PMMPredictions,
		PMMFailed:       st.Counters.PMMFailed,
		PMMShed:         st.Counters.PMMShed,
		PMMInvalidSlots: st.Counters.PMMInvalidSlots,
		DegradedSteps:   st.Counters.DegradedSteps,
		Yield:           st.Counters.Yield,
	}
	exe := exec.NewMachine(s.cfg.Kernel, st.VM)
	exe.RestoreFlaky(st.Flaky)
	exe.Execs = st.Execs
	exe.BlocksRun = st.BlocksRun
	w := &worker{
		cfg:          &s.cfg,
		id:           st.VM,
		r:            rng.FromState(st.RNG),
		exe:          exe,
		mut:          mutation.NewMutator(s.cfg.Kernel.Target),
		gen:          prog.NewGenerator(s.cfg.Kernel.Target),
		preds:        map[*corpus.Entry]*entryPrediction{},
		crashSeen:    map[string]*CrashReport{},
		stats:        stats,
		cost:         st.Cost,
		budget:       st.Budget,
		epochs:       st.Epochs,
		reconciled:   st.Reconciled,
		queueWaitNs:  st.QueueWaitNs,
		phantom:      st.Phantom,
		deferHarvest: true,
		scratchCover: trace.NewCover(),
		jn:           s.cfg.Journal,
	}
	for _, cs := range st.Crashes {
		report := &CrashReport{
			Spec: &kernel.CrashSpec{
				Title:      cs.Title,
				Category:   cs.Category,
				Detector:   cs.Detector,
				KnownSince: cs.KnownSince,
				Flaky:      cs.Flaky,
			},
			ProgText: cs.ProgText,
			Cost:     cs.Cost,
		}
		w.crashSeen[cs.Title] = report
		stats.Crashes = append(stats.Crashes, report)
	}
	for _, ps := range st.Preds {
		entry := s.byText[ps.Text]
		if entry == nil {
			return fmt.Errorf("fuzzer: VM %d prediction references unknown corpus entry %q", st.VM, ps.Text)
		}
		ep := &entryPrediction{}
		if ps.Pending {
			// Resubmit the captured query verbatim: no PMMQueries recount
			// (the original submission already counted) and no RNG draw
			// (target sampling happened before capture). The model is
			// deterministic, so the reply matches what the lost VM would
			// have harvested. A submit error can only mean a closed server;
			// the window entry then behaves as consumed, which only
			// diverges under serving faults (outside the guarantee).
			if reply, err := s.cfg.Server.InferAsync(serve.Query{
				Prog:    entry.Prog,
				Traces:  entry.Traces,
				Targets: ps.Targets,
			}); err == nil {
				ep.reply = reply
				ep.targets = append([]kernel.BlockID(nil), ps.Targets...)
			}
		} else {
			ep.pred = &serve.Prediction{Slots: append([]prog.GlobalSlot(nil), ps.Slots...)}
		}
		w.preds[entry] = ep
	}
	s.workers[st.VM] = w
	return nil
}

// SeedPass runs the campaign's seed-corpus pass on VM 0 (which this shard
// must own) directly against the replica, exactly as runParallel does
// before the first epoch, and exports the seeded entries plus VM 0's state
// as a delta for the coordinator to merge and broadcast.
func (s *Shard) SeedPass() (*VMDelta, error) {
	w := s.workers[0]
	if w == nil {
		return nil, fmt.Errorf("fuzzer: seed pass requires this shard to own VM 0")
	}
	w.view = &sharedView{corp: s.corp, blocks: &s.blocks}
	for _, p := range s.cfg.SeedCorpus {
		if err := w.seed(p); err != nil {
			return nil, err
		}
	}
	w.jevent(obs.EventSeed, int64(s.corp.Len()), "")
	delta := &VMDelta{VM: 0, Events: w.events}
	w.events = nil
	for _, e := range s.corp.Entries() {
		s.byText[e.Text] = e
		delta.Locals = append(delta.Locals, Local{Text: e.Text, Traces: e.Traces, Seeded: true})
	}
	delta.State = s.captureState(w)
	return delta, nil
}

// ApplyAccepted syncs the replica with the last barrier's merge outcome:
// the coordinator's accepted entries, in merge order. Entries produced by a
// VM this shard owns are spliced back with their original pointers (the
// prediction cache keys on entry identity); everything else is rebuilt from
// the wire form. The previous epoch's local buffers are consumed.
func (s *Shard) ApplyAccepted(accepted []Accepted) error {
	for _, a := range accepted {
		var e *corpus.Entry
		if locals, owned := s.lastLocals[a.VM]; owned {
			for _, la := range locals {
				if la.e.Text == a.Text {
					e = la.e
					break
				}
			}
		}
		if e == nil {
			p, err := prog.Parse(s.cfg.Kernel.Target, a.Text)
			if err != nil {
				return fmt.Errorf("fuzzer: bad accepted entry: %w", err)
			}
			e = corpus.EntryFromTraces(p, a.Traces)
		}
		if s.corp.SeedEntry(e) {
			s.blocks.Merge(e.Blocks)
			s.byText[e.Text] = e
		}
	}
	s.lastLocals = map[int][]localEntry{}
	return nil
}

// ApplySnapshot rebuilds the replica from a checkpoint's corpus snapshot
// (entries in publish order). The shard must be empty.
func (s *Shard) ApplySnapshot(entries []Accepted) error {
	if s.corp.Len() != 0 {
		return fmt.Errorf("fuzzer: snapshot onto non-empty shard replica")
	}
	return s.ApplyAccepted(entries)
}

// RunEpoch fuzzes one barrier slice. With only == nil every owned VM with
// remaining budget runs (the normal schedule, identical on every shard
// because cost is deterministic); a non-nil only lists specific VMs — the
// reassignment path, where freshly restored VMs re-run an epoch their dead
// shard never delivered. Deltas are returned in ascending VM order with
// each VM's pre-merge state.
func (s *Shard) RunEpoch(epoch int64, only []int) ([]VMDelta, error) {
	var ws []*worker
	if only == nil {
		for _, id := range s.Owned() {
			if w := s.workers[id]; w.cost < w.budget {
				ws = append(ws, w)
			}
		}
	} else {
		sorted := append([]int(nil), only...)
		sort.Ints(sorted)
		for _, id := range sorted {
			w := s.workers[id]
			if w == nil {
				return nil, fmt.Errorf("fuzzer: epoch requested for VM %d not on this shard", id)
			}
			ws = append(ws, w)
		}
	}
	var wg sync.WaitGroup
	for _, w := range ws {
		w.view = newEpochView(s.corp, &s.blocks)
		w.epoch = epoch
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.harvestPending()
			w.runEpoch(s.syncEvery)
		}(w)
	}
	wg.Wait()
	deltas := make([]VMDelta, 0, len(ws))
	for _, w := range ws {
		if w.err != nil {
			return nil, w.err
		}
		w.epochs++
		ev := w.view.(*epochView)
		d := VMDelta{VM: w.id, Events: w.events}
		w.events = nil
		for _, la := range ev.locals {
			d.Locals = append(d.Locals, Local{Text: la.e.Text, Traces: la.e.Traces, Seeded: la.seeded})
		}
		s.lastLocals[w.id] = ev.locals
		d.State = s.captureState(w)
		deltas = append(deltas, d)
	}
	return deltas, nil
}

// DrainPredictions blocking-drains every owned VM's in-flight prediction
// replies in ascending VM order without capturing state. The cluster model
// hot-swap calls it before a worker's server swaps generations, so every
// query is answered by the model generation of its submission epoch — the
// same drain the single-host engine performs at a swap barrier. Harvested
// replies stay invisible until each VM's next epoch (deferred harvest), so
// the drain moves no information across the barrier.
func (s *Shard) DrainPredictions() {
	for _, id := range s.Owned() {
		s.workers[id].harvestPending()
	}
}

// FinalDrain blocking-drains every owned VM's outstanding prediction
// replies (the end-of-campaign drain of runParallel) and returns the final
// states in ascending VM order.
func (s *Shard) FinalDrain() []VMState {
	var states []VMState
	for _, id := range s.Owned() {
		w := s.workers[id]
		w.harvestPending()
		states = append(states, s.captureState(w))
	}
	return states
}

// captureState snapshots a worker into its portable wire form. Prediction
// windows are exported sorted by entry text (map order must not leak), with
// entries not present in the replica marked Local for the coordinator to
// resolve against the merge outcome.
func (s *Shard) captureState(w *worker) VMState {
	st := VMState{
		VM:          w.id,
		RNG:         w.r.State(),
		Flaky:       w.exe.FlakyState(),
		Execs:       w.exe.Execs,
		BlocksRun:   w.exe.BlocksRun,
		Cost:        w.cost,
		Budget:      w.budget,
		Epochs:      w.epochs,
		Reconciled:  w.reconciled,
		Phantom:     w.phantom,
		QueueWaitNs: w.queueWaitNs,
		Counters: VMCounters{
			Executions:      w.stats.Executions,
			PMMQueries:      w.stats.PMMQueries,
			PMMPredictions:  w.stats.PMMPredictions,
			PMMFailed:       w.stats.PMMFailed,
			PMMShed:         w.stats.PMMShed,
			PMMInvalidSlots: w.stats.PMMInvalidSlots,
			DegradedSteps:   w.stats.DegradedSteps,
			Yield:           w.stats.Yield,
		},
	}
	for _, cr := range w.stats.Crashes {
		st.Crashes = append(st.Crashes, CrashState{
			Title:      cr.Spec.Title,
			Category:   cr.Spec.Category,
			Detector:   cr.Spec.Detector,
			KnownSince: cr.Spec.KnownSince,
			Flaky:      cr.Spec.Flaky,
			ProgText:   cr.ProgText,
			Cost:       cr.Cost,
		})
	}
	for entry, ep := range w.preds {
		if ep.pred == nil && ep.reply == nil {
			continue // consumed: absent and consumed behave identically
		}
		ps := PredState{Text: entry.Text, Local: s.byText[entry.Text] != entry}
		if ep.reply != nil {
			ps.Pending = true
			ps.Targets = append([]kernel.BlockID(nil), ep.targets...)
		} else {
			ps.Slots = append([]prog.GlobalSlot(nil), ep.pred.Slots...)
		}
		st.Preds = append(st.Preds, ps)
	}
	sort.Slice(st.Preds, func(i, j int) bool { return st.Preds[i].Text < st.Preds[j].Text })
	return st
}
