// Package fuzzer implements the fuzzing loop of the paper's Figure 1 in two
// configurations: the Syzkaller baseline (semi-random argument localization)
// and Snowplow (PMM-guided argument localization with asynchronous
// inference and a low-probability random fallback, §3.4).
//
// Time is simulated: each executed test costs its trace length in blocks,
// and the coverage time series is sampled against that cost budget, so the
// comparison between modes is independent of host speed. Inference runs on
// the serve package's worker pool and — as in the paper's deployment —
// consumes no fuzzing budget: while a prediction is pending the fuzzer
// performs its other mutation work, catching up with the PMM-selected
// argument mutations when the reply arrives.
package fuzzer

import (
	"fmt"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/corpus"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/mutation"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
	"github.com/repro/snowplow/internal/trace"
)

// Mode selects the fuzzer configuration.
type Mode int

// The fuzzer modes.
const (
	ModeSyzkaller Mode = iota // baseline: random argument localization
	ModeSnowplow              // PMM-guided argument localization
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeSnowplow {
		return "snowplow"
	}
	return "syzkaller"
}

// Config parameterizes a fuzzing campaign.
type Config struct {
	Mode   Mode
	Kernel *kernel.Kernel
	An     *cfa.Analysis
	Seed   uint64
	// Budget is the total simulated execution cost (blocks executed).
	Budget int64
	// SampleEvery records a coverage time-series point each time this much
	// budget is consumed.
	SampleEvery int64
	// Server performs PMM inference (required in ModeSnowplow).
	Server *serve.Server
	// FallbackProb is the probability of random argument localization in
	// Snowplow mode (§3.4's fallback mechanism).
	FallbackProb float64
	// DegradedFallbackProb replaces FallbackProb while the inference
	// server reports unhealthy (rolling error/timeout rate above its
	// threshold): the fuzzer temporarily leans on random localization and
	// sheds pending queries instead of blocking, recovering when health
	// returns. Defaults to 0.9; never lowers the effective probability
	// below FallbackProb.
	DegradedFallbackProb float64
	// GenerateProb is the chance of generating a fresh program instead of
	// mutating a corpus entry.
	GenerateProb float64
	// SeedCorpus are initial programs (executed and added unconditionally).
	SeedCorpus []*prog.Prog
	// MutationsPerPrediction scales how many argument mutations each
	// PMM-predicted slot receives (§3.4: more predicted arguments mean
	// more mutation attempts for the base program).
	MutationsPerPrediction int
	// MaxQueryTargets bounds the desired-target sample per query.
	MaxQueryTargets int
	// MaxPending bounds in-flight inference queries. When the window is
	// full the fuzzer blocks for the oldest prediction instead of doing
	// more random work: inference runs on separate serving hardware, so
	// waiting costs no simulated fuzzing budget — only wall-clock, which
	// the async window already overlaps with mutation work.
	MaxPending int
	// SyncInference disables the asynchronous integration (§3.4 ablation):
	// every guided mutation blocks on a fresh inference call, stalling the
	// mutator for the full round trip.
	SyncInference bool
	// MinimizeCorpus enables Syzkaller-style triage minimization: before a
	// program joins the corpus, calls that do not contribute to its new
	// coverage are removed (the extra executions are charged to the
	// budget, as triage work is on the real fuzzing machine).
	MinimizeCorpus bool
}

// Point is one coverage time-series sample.
type Point struct {
	Cost  int64 // simulated time
	Edges int   // accumulated edge coverage
}

// CrashReport is one deduplicated crash observation.
type CrashReport struct {
	Spec     *kernel.CrashSpec
	ProgText string // serialized crashing program
	Cost     int64  // simulated time of first observation
}

// Stats is the campaign outcome.
type Stats struct {
	Mode       Mode
	Series     []Point
	Crashes    []*CrashReport
	Executions int64
	CorpusSize int
	FinalEdges int
	// PMMQueries and PMMPredictions count inference traffic (Snowplow).
	PMMQueries     int64
	PMMPredictions int64
	// PMMFailed counts queries whose reply was a terminal serving error
	// (deadline, retries exhausted, server closed).
	PMMFailed int64
	// PMMShed counts pending queries abandoned while serving was
	// unhealthy.
	PMMShed int64
	// PMMInvalidSlots counts predicted slots rejected as out of range
	// (corrupt or stale predictions must never crash the mutator).
	PMMInvalidSlots int64
	// PMMCacheHits/PMMCacheMisses mirror the serving builder's
	// graph-encoding cache counters at campaign end (zero without a cache).
	PMMCacheHits   int64
	PMMCacheMisses int64
	// DegradedSteps counts mutation rounds taken while the server was
	// unhealthy.
	DegradedSteps int64
	// Yield breaks down executions and resulting new edges by work class,
	// for diagnosing where coverage comes from.
	Yield YieldStats
}

// YieldStats attributes executions and new edges to work classes.
type YieldStats struct {
	GuidedExecs, GuidedEdges     int64 // PMM-localized argument mutations
	RandArgExecs, RandArgEdges   int64 // randomly localized argument mutations
	OtherMutExecs, OtherMutEdges int64 // call insertion/removal
	GenerateExecs, GenerateEdges int64 // freshly generated programs
}

// Fuzzer is one configured campaign.
type Fuzzer struct {
	cfg  Config
	r    *rng.Rand
	exe  *exec.Executor
	mut  *mutation.Mutator
	gen  *prog.Generator
	corp *corpus.Corpus

	globalBlocks trace.BlockSet
	crashSeen    map[string]*CrashReport
	stats        Stats
	cost         int64
	nextSample   int64

	preds map[*corpus.Entry]*entryPrediction
}

// entryPrediction caches PMM's localization for one corpus entry. A
// prediction goes stale once the campaign covers most of the targets it was
// computed for; stale predictions are dropped and re-queried, since guiding
// mutations toward already-covered code wastes budget.
type entryPrediction struct {
	pred    *serve.Prediction
	reply   <-chan serve.Prediction
	targets []kernel.BlockID // desired targets the prediction was computed for
}

// New creates a fuzzer. It panics if Snowplow mode lacks a server.
func New(cfg Config) *Fuzzer {
	if cfg.Mode == ModeSnowplow && cfg.Server == nil {
		panic("fuzzer: Snowplow mode requires an inference server")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = cfg.Budget / 100
		if cfg.SampleEvery <= 0 {
			cfg.SampleEvery = 1
		}
	}
	if cfg.FallbackProb == 0 {
		cfg.FallbackProb = 0.1
	}
	if cfg.DegradedFallbackProb == 0 {
		cfg.DegradedFallbackProb = 0.9
	}
	if cfg.GenerateProb == 0 {
		cfg.GenerateProb = 0.15
	}
	if cfg.MutationsPerPrediction == 0 {
		cfg.MutationsPerPrediction = 4
	}
	if cfg.MaxQueryTargets == 0 {
		cfg.MaxQueryTargets = 16
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = 8
	}
	f := &Fuzzer{
		cfg:          cfg,
		r:            rng.New(cfg.Seed),
		exe:          exec.New(cfg.Kernel),
		mut:          mutation.NewMutator(cfg.Kernel.Target),
		gen:          prog.NewGenerator(cfg.Kernel.Target),
		corp:         corpus.New(),
		globalBlocks: trace.BlockSet{},
		crashSeen:    map[string]*CrashReport{},
		preds:        map[*corpus.Entry]*entryPrediction{},
	}
	f.stats.Mode = cfg.Mode
	return f
}

// Corpus exposes the fuzzer's corpus (for directed fuzzing and tests).
func (f *Fuzzer) Corpus() *corpus.Corpus { return f.corp }

// Run executes the campaign until the budget is exhausted and returns the
// statistics.
func (f *Fuzzer) Run() (*Stats, error) {
	f.nextSample = f.cfg.SampleEvery
	for _, p := range f.cfg.SeedCorpus {
		if err := f.seed(p); err != nil {
			return nil, err
		}
	}
	for f.cost < f.cfg.Budget {
		if err := f.step(); err != nil {
			return nil, err
		}
	}
	f.drainPending()
	f.stats.CorpusSize = f.corp.Len()
	f.stats.FinalEdges = f.corp.TotalEdges()
	if f.cfg.Server != nil {
		ss := f.cfg.Server.Stats()
		f.stats.PMMCacheHits = ss.CacheHits
		f.stats.PMMCacheMisses = ss.CacheMisses
	}
	if len(f.stats.Series) == 0 || f.stats.Series[len(f.stats.Series)-1].Cost < f.cost {
		f.stats.Series = append(f.stats.Series, Point{Cost: f.cost, Edges: f.corp.TotalEdges()})
	}
	return &f.stats, nil
}

// step performs one iteration of the Figure 1 loop. The two modes differ
// only inside the ARGUMENT_MUTATION branch — type selection, instantiation,
// call insertion/removal and fresh generation are shared — exactly as in
// the paper's deployment, which swaps the localizer and nothing else.
func (f *Fuzzer) step() error {
	entry := f.corp.Choose(f.r)
	if entry == nil || f.r.Chance(f.cfg.GenerateProb) {
		p := f.gen.Generate(f.r, 2+f.r.Intn(5))
		_, err := f.execute(p, classGenerate)
		return err
	}

	t := f.mut.SelectType(f.r, entry.Prog)
	if t == mutation.ArgMutation && f.cfg.Mode == ModeSnowplow && !f.r.Chance(f.fallbackProb()) {
		return f.guidedArgMutation(entry)
	}
	class := classOther
	if t == mutation.ArgMutation {
		class = classRandArg
	}
	rec := f.mut.MutateType(f.r, entry.Prog, t)
	_, err := f.execute(rec.Prog, class)
	return err
}

// fallbackProb is the effective random-localization probability for this
// round: the configured FallbackProb while serving is healthy, raised to
// DegradedFallbackProb while it is not (§3.4's graceful degradation). A
// degraded round also sheds pending inference queries, so the fuzzer's
// in-flight window drains instead of accumulating against a sick server.
func (f *Fuzzer) fallbackProb() float64 {
	fb := f.cfg.FallbackProb
	if f.cfg.Server == nil || f.cfg.Server.Healthy() {
		return fb
	}
	f.stats.DegradedSteps++
	f.shedPending()
	if f.cfg.DegradedFallbackProb > fb {
		fb = f.cfg.DegradedFallbackProb
	}
	return fb
}

// shedPending abandons every in-flight inference query. Reply channels are
// buffered and delivered exactly once, so dropping the references leaks
// neither goroutines nor memory beyond the reply value itself.
func (f *Fuzzer) shedPending() {
	for _, st := range f.preds {
		if st.reply != nil {
			st.reply = nil
			st.targets = nil
			f.stats.PMMShed++
		}
	}
}

// sanitizeSlots drops slot references outside the program's mutation
// surface. Predictions cross a serving boundary and may be corrupt or
// stale; they must never crash the mutator.
func (f *Fuzzer) sanitizeSlots(p *prog.Prog, slots []prog.GlobalSlot) []prog.GlobalSlot {
	valid := slots[:0]
	for _, gs := range slots {
		if gs.Call < 0 || gs.Call >= len(p.Calls) ||
			gs.Slot < 0 || gs.Slot >= len(p.Calls[gs.Call].Meta.Slots()) {
			f.stats.PMMInvalidSlots++
			continue
		}
		valid = append(valid, gs)
	}
	return valid
}

// guidedArgMutation performs PMM-localized argument mutations on the entry.
// The first time an entry is picked its query is submitted asynchronously
// and the fuzzer falls back to random localization until the prediction
// arrives (hiding inference latency behind mutation work, §3.4). Each
// prediction is consumed exactly once — one burst of argument mutations
// proportional to the number of predicted arguments — and a fresh query is
// issued the next time the entry is picked, so guidance always reflects the
// current coverage frontier.
func (f *Fuzzer) guidedArgMutation(entry *corpus.Entry) error {
	if f.cfg.SyncInference {
		return f.syncGuidedArgMutation(entry)
	}
	st := f.predictionFor(entry)
	if st == nil || st.pred == nil {
		// Prediction not ready (or no fresh argument-gated frontier to ask
		// about): random-localizer mutation this round, hiding the
		// inference latency behind ordinary mutation work (§3.4).
		rec := f.mut.MutateType(f.r, entry.Prog, mutation.ArgMutation)
		_, err := f.execute(rec.Prog, classRandArg)
		return err
	}
	slots := f.sanitizeSlots(entry.Prog, st.pred.Slots)
	st.pred = nil // consume: next pick re-queries with fresh targets
	if len(slots) == 0 {
		rec := f.mut.MutateType(f.r, entry.Prog, mutation.ArgMutation)
		_, err := f.execute(rec.Prog, classRandArg)
		return err
	}
	return f.guidedBurst(entry, slots)
}

// guidedBurst performs the PMM-localized argument mutations for one
// prediction: MutationsPerPrediction instantiations per predicted slot
// (§3.4: more predicted arguments -> more mutations of this base), plus
// pairwise slot combinations that probe multi-constraint ladders a
// single-slot mutation cannot cross. Bursts only happen when a prediction
// has actually arrived — the fuzzer never waits for the model — so the
// guided share of the budget is bounded by the serving throughput, exactly
// as in the paper's deployment.
func (f *Fuzzer) guidedBurst(entry *corpus.Entry, slots []prog.GlobalSlot) error {
	if len(slots) > 8 {
		slots = slots[:8]
	}
	for _, slot := range slots {
		for j := 0; j < f.cfg.MutationsPerPrediction; j++ {
			if f.cost >= f.cfg.Budget {
				return nil
			}
			rec := f.mut.MutateArgs(f.r, entry.Prog, []prog.GlobalSlot{slot})
			if _, err := f.execute(rec.Prog, classGuided); err != nil {
				return err
			}
		}
	}
	if len(slots) >= 2 {
		for j := 0; j < f.cfg.MutationsPerPrediction; j++ {
			if f.cost >= f.cfg.Budget {
				return nil
			}
			a := slots[f.r.Intn(len(slots))]
			b := slots[f.r.Intn(len(slots))]
			if a == b {
				continue
			}
			rec := f.mut.MutateArgs(f.r, entry.Prog, []prog.GlobalSlot{a, b})
			if _, err := f.execute(rec.Prog, classGuided); err != nil {
				return err
			}
		}
	}
	return nil
}

// syncGuidedArgMutation is the ablated integration: block on inference for
// every guided round. The simulated budget is unaffected (inference is
// off-box), but wall-clock throughput collapses — the effect §5.5 measures.
func (f *Fuzzer) syncGuidedArgMutation(entry *corpus.Entry) error {
	targets := f.queryTargets(entry)
	if len(targets) == 0 {
		rec := f.mut.MutateType(f.r, entry.Prog, mutation.ArgMutation)
		_, err := f.execute(rec.Prog, classRandArg)
		return err
	}
	f.stats.PMMQueries++
	pred, err := f.cfg.Server.Infer(serve.Query{Prog: entry.Prog, Traces: entry.Traces, Targets: targets})
	if err != nil {
		f.stats.PMMFailed++
		rec := f.mut.MutateType(f.r, entry.Prog, mutation.ArgMutation)
		_, execErr := f.execute(rec.Prog, classRandArg)
		return execErr
	}
	f.stats.PMMPredictions++
	slots := f.sanitizeSlots(entry.Prog, pred.Slots)
	if len(slots) == 0 {
		rec := f.mut.MutateType(f.r, entry.Prog, mutation.ArgMutation)
		_, execErr := f.execute(rec.Prog, classRandArg)
		return execErr
	}
	return f.guidedBurst(entry, slots)
}

// predictionFor returns the entry's cached prediction state, submitting or
// refreshing the asynchronous query as needed and harvesting a completed
// reply if one is available.
func (f *Fuzzer) predictionFor(entry *corpus.Entry) *entryPrediction {
	st := f.preds[entry]
	if st == nil {
		st = &entryPrediction{}
		f.preds[entry] = st
		f.submitQuery(entry, st)
		return st
	}
	if st.reply != nil {
		select {
		case pred := <-st.reply:
			st.reply = nil
			if pred.Err != nil {
				// Terminal serving failure (deadline, retries
				// exhausted, closed): no guidance this round; the
				// random fallback covers the base.
				f.stats.PMMFailed++
			} else {
				st.pred = &pred
				f.stats.PMMPredictions++
			}
		default:
		}
	}
	// Consumed (or never-answered) prediction with no query in flight:
	// resubmit against the current frontier.
	if st.pred == nil && st.reply == nil {
		f.submitQuery(entry, st)
	}
	return st
}

// submitQuery asks PMM which arguments of the base to mutate, targeting
// uncovered frontier blocks near the base's coverage.
func (f *Fuzzer) submitQuery(entry *corpus.Entry, st *entryPrediction) {
	if !f.cfg.Server.Healthy() {
		return // degraded serving: shed instead of queueing more work
	}
	targets := f.queryTargets(entry)
	if len(targets) == 0 {
		return
	}
	reply, err := f.cfg.Server.InferAsync(serve.Query{
		Prog:    entry.Prog,
		Traces:  entry.Traces,
		Targets: targets,
	})
	if err != nil {
		return // server closed: the random fallback already covers this base
	}
	f.stats.PMMQueries++
	st.reply = reply
	st.targets = targets
}

// queryTargets picks desired targets for a base: frontier blocks of its
// coverage that the whole campaign has not covered yet and that sit behind
// argument-dependent branches. State-gated branches (counters) cannot be
// flipped by argument mutation, so asking PMM about them only produces
// unusable localizations; the gating predicate's class is static CFG
// information the fuzzer already has.
func (f *Fuzzer) queryTargets(entry *corpus.Entry) []kernel.BlockID {
	alts := f.cfg.An.Frontier(entry.Blocks)
	var fresh []kernel.BlockID
	seen := map[kernel.BlockID]bool{}
	for _, alt := range alts {
		if seen[alt.Entry] || f.globalBlocks.Has(alt.Entry) {
			continue
		}
		switch f.cfg.Kernel.Block(alt.From).Pred.Kind {
		case kernel.PredCounterGT, kernel.PredCounterEQ:
			continue
		}
		seen[alt.Entry] = true
		fresh = append(fresh, alt.Entry)
	}
	if len(fresh) > f.cfg.MaxQueryTargets {
		f.r.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
		fresh = fresh[:f.cfg.MaxQueryTargets]
	}
	return fresh
}

// yieldClass attributes an execution to a work class for YieldStats.
type yieldClass int

const (
	classGenerate yieldClass = iota
	classGuided
	classRandArg
	classOther
)

func (f *Fuzzer) recordYield(class yieldClass, newEdges int) {
	y := &f.stats.Yield
	switch class {
	case classGenerate:
		y.GenerateExecs++
		y.GenerateEdges += int64(newEdges)
	case classGuided:
		y.GuidedExecs++
		y.GuidedEdges += int64(newEdges)
	case classRandArg:
		y.RandArgExecs++
		y.RandArgEdges += int64(newEdges)
	default:
		y.OtherMutExecs++
		y.OtherMutEdges += int64(newEdges)
	}
}

// execute runs a program, charges its cost, triages the result, and
// updates corpus and crash records.
func (f *Fuzzer) execute(p *prog.Prog, class yieldClass) (*exec.Result, error) {
	res, err := f.exe.Run(p)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: %w", err)
	}
	f.stats.Executions++
	f.charge(int64(res.Cost))
	if res.Crash != nil {
		if _, seen := f.crashSeen[res.Crash.Title]; !seen {
			report := &CrashReport{Spec: res.Crash, ProgText: p.Serialize(), Cost: f.cost}
			f.crashSeen[res.Crash.Title] = report
			f.stats.Crashes = append(f.stats.Crashes, report)
		}
		f.recordYield(class, 0)
		return res, nil
	}
	cover := trace.EdgesOf(res)
	blocks := trace.NewBlockSet(trace.BlocksOf(res))
	if f.cfg.MinimizeCorpus && len(p.Calls) > 1 && f.corp.NewEdges(cover) > 0 {
		p, res, cover, blocks = f.minimize(p, res, cover)
	}
	newEdges := f.corp.Add(p, cover, blocks, res.CallTraces)
	if newEdges > 0 {
		for b := range blocks {
			f.globalBlocks.Add(b)
		}
	}
	f.recordYield(class, newEdges)
	return res, nil
}

// minimize implements Syzkaller's triage minimization: drop calls (last to
// first) while the program still contributes every new edge it was about to
// add. Each trial execution is charged to the budget.
func (f *Fuzzer) minimize(p *prog.Prog, res *exec.Result, cover *trace.Cover) (*prog.Prog, *exec.Result, *trace.Cover, trace.BlockSet) {
	must := trace.NewCover()
	total := f.corp.TotalCover()
	for _, e := range cover.Edges() {
		if !total.Has(e) {
			must.Add(e)
		}
	}
	best, bestRes, bestCover := p, res, cover
	for i := len(best.Calls) - 1; i >= 0; i-- {
		if len(best.Calls) == 1 {
			break
		}
		cand := best.Clone()
		cand.RemoveCall(i)
		candRes, err := f.exe.Run(cand)
		if err != nil || candRes.Crash != nil {
			continue
		}
		f.stats.Executions++
		f.charge(int64(candRes.Cost))
		candCover := trace.EdgesOf(candRes)
		keeps := true
		for _, e := range must.Edges() {
			if !candCover.Has(e) {
				keeps = false
				break
			}
		}
		if keeps {
			best, bestRes, bestCover = cand, candRes, candCover
		}
	}
	return best, bestRes, bestCover, trace.NewBlockSet(trace.BlocksOf(bestRes))
}

// seed executes and unconditionally retains an initial program.
func (f *Fuzzer) seed(p *prog.Prog) error {
	res, err := f.exe.Run(p)
	if err != nil {
		return err
	}
	f.stats.Executions++
	f.charge(int64(res.Cost))
	if res.Crash != nil {
		return nil
	}
	cover := trace.EdgesOf(res)
	blocks := trace.NewBlockSet(trace.BlocksOf(res))
	if f.corp.Seed(p, cover, blocks, res.CallTraces) {
		for b := range blocks {
			f.globalBlocks.Add(b)
		}
	}
	return nil
}

// charge advances simulated time and samples the coverage series.
func (f *Fuzzer) charge(cost int64) {
	f.cost += cost
	for f.cost >= f.nextSample {
		f.stats.Series = append(f.stats.Series, Point{Cost: f.nextSample, Edges: f.corp.TotalEdges()})
		f.nextSample += f.cfg.SampleEvery
	}
}

// drainPending harvests predictions still in flight at budget exhaustion.
// Reply channels are buffered and delivered exactly once, so abandoning an
// unharvested reply cannot leak a goroutine.
func (f *Fuzzer) drainPending() {
	for _, st := range f.preds {
		if st.reply != nil {
			select {
			case pred := <-st.reply:
				if pred.Err != nil {
					f.stats.PMMFailed++
				} else {
					f.stats.PMMPredictions++
				}
			default:
			}
			st.reply = nil
		}
	}
}
