// Package fuzzer implements the fuzzing loop of the paper's Figure 1 in two
// configurations: the Syzkaller baseline (semi-random argument localization)
// and Snowplow (PMM-guided argument localization with asynchronous
// inference and a low-probability random fallback, §3.4).
//
// Time is simulated: each executed test costs its trace length in blocks,
// and the coverage time series is sampled against that cost budget, so the
// comparison between modes is independent of host speed. Inference runs on
// the serve package's worker pool and — as in the paper's deployment —
// consumes no fuzzing budget: while a prediction is pending the fuzzer
// performs its other mutation work, catching up with the PMM-selected
// argument mutations when the reply arrives.
//
// Campaigns scale across simulated VMs (Config.VMs): each VM worker owns
// its execution machine, RNG and prediction window and runs the full
// generate→exec→trace→triage loop, synchronizing with the shared corpus
// through an epoch-barrier reconciler (see parallel.go). VMs=1 runs the
// original sequential loop and is bit-identical to it.
package fuzzer

import (
	"fmt"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/corpus"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/mutation"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/online"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
	"github.com/repro/snowplow/internal/trace"
)

// Mode selects the fuzzer configuration.
type Mode int

// The fuzzer modes.
const (
	ModeSyzkaller Mode = iota // baseline: random argument localization
	ModeSnowplow              // PMM-guided argument localization
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeSnowplow {
		return "snowplow"
	}
	return "syzkaller"
}

// Config parameterizes a fuzzing campaign.
type Config struct {
	Mode   Mode
	Kernel *kernel.Kernel
	An     *cfa.Analysis
	Seed   uint64
	// Budget is the total simulated execution cost (blocks executed),
	// shared evenly across the VM fleet.
	Budget int64
	// SampleEvery records a coverage time-series point each time this much
	// budget is consumed.
	SampleEvery int64
	// VMs is the number of simulated fuzzing VMs running the campaign
	// concurrently against the shared corpus. 0 or 1 runs the sequential
	// loop; N>1 runs N VM workers whose results merge deterministically
	// through the epoch reconciler, so a fixed seed reproduces the same
	// campaign at any worker scheduling.
	VMs int
	// SyncEvery is the per-VM simulated cost between corpus
	// synchronization barriers in parallel mode (0 = per-VM budget / 32).
	SyncEvery int64
	// Server performs PMM inference (required in ModeSnowplow). It is any
	// serve.Inferrer: a dedicated *serve.Server, or one *serve.Tenant of a
	// shared multi-tenant server when several campaigns run against the
	// same model.
	Server serve.Inferrer
	// FallbackProb is the probability of random argument localization in
	// Snowplow mode (§3.4's fallback mechanism).
	FallbackProb float64
	// DegradedFallbackProb replaces FallbackProb while the inference
	// server reports unhealthy (rolling error/timeout rate above its
	// threshold): the fuzzer temporarily leans on random localization and
	// sheds pending queries instead of blocking, recovering when health
	// returns. Defaults to 0.9; never lowers the effective probability
	// below FallbackProb.
	DegradedFallbackProb float64
	// GenerateProb is the chance of generating a fresh program instead of
	// mutating a corpus entry.
	GenerateProb float64
	// SeedCorpus are initial programs (executed and added unconditionally).
	SeedCorpus []*prog.Prog
	// MutationsPerPrediction scales how many argument mutations each
	// PMM-predicted slot receives (§3.4: more predicted arguments mean
	// more mutation attempts for the base program).
	MutationsPerPrediction int
	// MaxQueryTargets bounds the desired-target sample per query.
	MaxQueryTargets int
	// MaxPending bounds in-flight inference queries. When the window is
	// full the fuzzer blocks for the oldest prediction instead of doing
	// more random work: inference runs on separate serving hardware, so
	// waiting costs no simulated fuzzing budget — only wall-clock, which
	// the async window already overlaps with mutation work.
	MaxPending int
	// SyncInference disables the asynchronous integration (§3.4 ablation):
	// every guided mutation blocks on a fresh inference call, stalling the
	// mutator for the full round trip.
	SyncInference bool
	// Metrics, when non-nil, receives the campaign's instrument bundle
	// (see OBSERVABILITY.md for the catalog). Nil disables metrics at
	// zero measurable cost — hot paths pay one nil check per site.
	Metrics *obs.Registry
	// Journal, when non-nil, records structured campaign events (epoch
	// barriers, new-edge discoveries, crash dedup, degraded transitions)
	// with seed-deterministic sequence numbers; see obs.Journal.
	Journal *obs.Journal
	// MinimizeCorpus enables Syzkaller-style triage minimization: before a
	// program joins the corpus, calls that do not contribute to its new
	// coverage are removed (the extra executions are charged to the
	// budget, as triage work is on the real fuzzing machine).
	MinimizeCorpus bool
	// Online, when non-nil, enables continual learning: a background
	// controller (internal/online) retrains the PMM on the campaign's own
	// corpus at fixed epoch barriers and hot-swaps accepted checkpoints into
	// the server at barrier epochs, without pausing VMs. Requires
	// ModeSnowplow and a Server implementing serve.ModelSwapper (a local
	// *serve.Server or *serve.Tenant; the TCP client cannot swap). Online
	// campaigns always run through the epoch-barrier engine, even at VMs=1,
	// so the swap schedule is defined by barrier epochs.
	Online *online.Config
	// OnlineTrainWorkers / OnlineCollectWorkers bound the background
	// retrain's data-parallel training and harvest pools (0 = library
	// defaults). Wall-clock only: results are bit-identical at any width.
	OnlineTrainWorkers   int
	OnlineCollectWorkers int
}

// Point is one coverage time-series sample.
type Point struct {
	Cost  int64 // simulated time
	Edges int   // accumulated edge coverage
}

// CrashReport is one deduplicated crash observation.
type CrashReport struct {
	Spec     *kernel.CrashSpec
	ProgText string // serialized crashing program
	Cost     int64  // simulated time of first observation (VM-local time
	// in parallel campaigns)
}

// VMStat is one VM worker's contribution to the campaign, for observing
// degradation under contention.
type VMStat struct {
	VM         int
	Executions int64
	// NewEdges is the VM's new-edge yield: edges it contributed to the
	// shared corpus (after cross-VM deduplication by the reconciler).
	NewEdges int64
	// Queries counts the VM's PMM inference queries.
	Queries int64
	// Epochs is how many reconcile epochs the VM ran.
	Epochs int64
	// QueueWaitNs is wall-clock time the VM spent blocked at reconcile
	// barriers waiting for slower VMs (not simulated time; excluded from
	// determinism guarantees).
	QueueWaitNs int64
}

// Stats is the campaign outcome.
type Stats struct {
	Mode       Mode
	Series     []Point
	Crashes    []*CrashReport
	Executions int64
	CorpusSize int
	FinalEdges int
	// PMMQueries and PMMPredictions count inference traffic (Snowplow).
	PMMQueries     int64
	PMMPredictions int64
	// PMMFailed counts queries whose reply was a terminal serving error
	// (deadline, retries exhausted, server closed).
	PMMFailed int64
	// PMMShed counts pending queries abandoned while serving was
	// unhealthy.
	PMMShed int64
	// PMMInvalidSlots counts predicted slots rejected as out of range
	// (corrupt or stale predictions must never crash the mutator).
	PMMInvalidSlots int64
	// PMMCacheHits/PMMCacheMisses attribute the campaign's inference
	// queries to the serving graph-encoding cache. When the server exposes
	// its cache capacity (a local *serve.Server or *serve.Tenant) they come
	// from a deterministic campaign-side LRU simulation fed in reconcile
	// order, so the split is a pure function of the seed even under
	// concurrent serving workers; otherwise they mirror the server's
	// wall-clock counters at campaign end (zero without a cache).
	PMMCacheHits   int64
	PMMCacheMisses int64
	// DegradedSteps counts mutation rounds taken while the server was
	// unhealthy.
	DegradedSteps int64
	// Yield breaks down executions and resulting new edges by work class,
	// for diagnosing where coverage comes from.
	Yield YieldStats
	// VMs holds per-VM counters (one element per simulated VM).
	VMs []VMStat
	// ModelRetrains / ModelSwaps / ModelSwapsSkipped count online-learning
	// retrain kickoffs and the gate outcomes of their candidate
	// checkpoints; ModelVersion is the serving checkpoint generation at
	// campaign end (0 = the initial frozen model). All zero unless
	// Config.Online is set.
	ModelRetrains     int64
	ModelSwaps        int64
	ModelSwapsSkipped int64
	ModelVersion      int64
}

// YieldStats attributes executions and new edges to work classes.
type YieldStats struct {
	GuidedExecs, GuidedEdges     int64 // PMM-localized argument mutations
	RandArgExecs, RandArgEdges   int64 // randomly localized argument mutations
	OtherMutExecs, OtherMutEdges int64 // call insertion/removal
	GenerateExecs, GenerateEdges int64 // freshly generated programs
}

// add accumulates another breakdown into y.
func (y *YieldStats) add(o YieldStats) {
	y.GuidedExecs += o.GuidedExecs
	y.GuidedEdges += o.GuidedEdges
	y.RandArgExecs += o.RandArgExecs
	y.RandArgEdges += o.RandArgEdges
	y.OtherMutExecs += o.OtherMutExecs
	y.OtherMutEdges += o.OtherMutEdges
	y.GenerateExecs += o.GenerateExecs
	y.GenerateEdges += o.GenerateEdges
}

// edges is the total new-edge yield across work classes.
func (y YieldStats) edges() int64 {
	return y.GuidedEdges + y.RandArgEdges + y.OtherMutEdges + y.GenerateEdges
}

// corpusView is a VM worker's window onto the campaign corpus. The
// sequential campaign reads and writes the shared corpus directly; a
// parallel VM sees an epoch snapshot plus its own local additions, which
// the reconciler merges at the next barrier.
type corpusView interface {
	Choose(r *rng.Rand) *corpus.Entry
	Add(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID) int
	Seed(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID) bool
	NewEdges(cover *trace.Cover) int
	TotalCover() *trace.Cover
	// HasBlock reports whether the campaign (as visible to this VM) has
	// covered the block; queryTargets uses it to pick fresh frontiers.
	HasBlock(b kernel.BlockID) bool
}

// sharedView is the sequential campaign's direct window onto the corpus.
type sharedView struct {
	corp   *corpus.Corpus
	blocks *trace.BlockSet // campaign-global covered blocks
}

func (v *sharedView) Choose(r *rng.Rand) *corpus.Entry { return v.corp.Choose(r) }

func (v *sharedView) Add(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID) int {
	n := v.corp.Add(p, cover, blocks, traces)
	if n > 0 {
		v.blocks.Merge(blocks)
	}
	return n
}

func (v *sharedView) Seed(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID) bool {
	if v.corp.Seed(p, cover, blocks, traces) {
		v.blocks.Merge(blocks)
		return true
	}
	return false
}

func (v *sharedView) NewEdges(cover *trace.Cover) int { return v.corp.NewEdges(cover) }
func (v *sharedView) TotalCover() *trace.Cover        { return v.corp.TotalCover() }
func (v *sharedView) HasBlock(b kernel.BlockID) bool  { return v.blocks.Has(b) }

// Fuzzer is one configured campaign.
type Fuzzer struct {
	cfg          Config
	corp         *corpus.Corpus
	globalBlocks trace.BlockSet
	stats        Stats
	seq          *worker          // the sequential (VMs<=1) worker
	metrics      *campaignMetrics // nil when Config.Metrics is nil

	// cacheSim replays the serving graph-cache LRU over the campaign's
	// query keys in reconcile order, making the hit/miss split
	// seed-deterministic (nil when the server's cache capacity is unknown).
	cacheSim *qgraph.CacheSim

	// online / swapper drive continual learning when Config.Online is set.
	online  *online.Controller
	swapper serve.ModelSwapper
}

// worker is one simulated fuzzing VM: the full generate→exec→trace→triage
// loop with its own execution machine, RNG stream, prediction window and
// scratch buffers. The sequential campaign is a single worker bound
// directly to the shared corpus.
type worker struct {
	cfg  *Config
	id   int
	r    *rng.Rand
	exe  *exec.Machine
	mut  *mutation.Mutator
	gen  *prog.Generator
	view corpusView

	preds     map[*corpus.Entry]*entryPrediction
	crashSeen map[string]*CrashReport
	stats     *Stats // counter sink (the campaign Stats when sequential)

	// Observability (all optional): the campaign's shared instrument
	// bundle, the shared journal, the VM's buffered mid-epoch events
	// (flushed by the reconciler in VM order), the VM's current epoch
	// number, and the last observed serving-health state.
	m        *campaignMetrics
	jn       *obs.Journal
	events   []obs.Event
	epoch    int64
	degraded bool

	cost        int64
	budget      int64
	sampleEvery int64 // sequential: series sampling period (0 = no series)
	nextSample  int64

	// Parallel-mode bookkeeping (see parallel.go).
	err          error         // first step error inside an epoch
	epochElapsed time.Duration // wall-clock of the worker's last epoch
	queueWaitNs  int64         // accumulated barrier wait
	epochs       int64
	reconciled   int64 // new edges credited after cross-VM dedup

	// deferHarvest makes prediction replies visible only at epoch
	// barriers, pinning the parallel campaign's query schedule to
	// simulated time instead of wall-clock arrival order.
	deferHarvest bool

	// Cache-simulation plumbing: a sequential worker folds each submitted
	// query's key into the shared simulator immediately (cacheSim non-nil);
	// a parallel VM buffers keys in submission order (trackKeys) for the
	// reconciler to fold at the barrier in VM order.
	cacheSim  *qgraph.CacheSim
	trackKeys bool
	keyBuf    []qgraph.QueryKey

	// phantom counts in-flight replies owed to this VM whose base entries
	// could not be reconstructed when the VM was restored from a cluster
	// checkpoint (they lost a merge and died before the reply landed). The
	// original VM would have harvested each as one successful prediction
	// at its next barrier, so the restored VM settles the same count there
	// (cluster determinism assumes fault-free serving, like the journal).
	phantom int

	// scratch buffers reused across executions (trace.EdgesOfInto /
	// trace.BlockSetOfInto); the corpus clones them on acceptance.
	scratchCover  *trace.Cover
	scratchBlocks trace.BlockSet
}

// entryPrediction caches PMM's localization for one corpus entry. A
// prediction goes stale once the campaign covers most of the targets it was
// computed for; stale predictions are dropped and re-queried, since guiding
// mutations toward already-covered code wastes budget.
type entryPrediction struct {
	pred    *serve.Prediction
	reply   <-chan serve.Prediction
	targets []kernel.BlockID // desired targets the prediction was computed for
}

// Normalized returns the config with the same defaults New applies, so
// out-of-process campaign engines (internal/cluster) resolve knobs exactly
// like a single-host campaign: a cluster worker and the local fuzzer must
// never disagree on an effective probability or window size.
func (c Config) Normalized() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = c.Budget / 100
		if c.SampleEvery <= 0 {
			c.SampleEvery = 1
		}
	}
	if c.VMs <= 0 {
		c.VMs = 1
	}
	if c.FallbackProb == 0 {
		c.FallbackProb = 0.1
	}
	if c.DegradedFallbackProb == 0 {
		c.DegradedFallbackProb = 0.9
	}
	if c.GenerateProb == 0 {
		c.GenerateProb = 0.15
	}
	if c.MutationsPerPrediction == 0 {
		c.MutationsPerPrediction = 4
	}
	if c.MaxQueryTargets == 0 {
		c.MaxQueryTargets = 16
	}
	if c.MaxPending == 0 {
		c.MaxPending = 8
	}
	return c
}

// New creates a fuzzer. It panics if Snowplow mode lacks a server.
func New(cfg Config) *Fuzzer {
	if cfg.Mode == ModeSnowplow && cfg.Server == nil {
		panic("fuzzer: Snowplow mode requires an inference server")
	}
	cfg = cfg.Normalized()
	f := &Fuzzer{
		cfg:  cfg,
		corp: corpus.New(),
	}
	f.stats.Mode = cfg.Mode
	if cfg.Metrics != nil {
		f.metrics = newCampaignMetrics(cfg.Metrics, f.corp)
	}
	if cfg.Server != nil {
		if gc, ok := cfg.Server.(interface{ GraphCacheCapacity() int }); ok {
			if capacity := gc.GraphCacheCapacity(); capacity > 0 {
				f.cacheSim = qgraph.NewCacheSim(capacity)
			}
		}
	}
	f.seq = &worker{
		cfg:          &f.cfg,
		id:           0,
		r:            rng.New(cfg.Seed),
		exe:          exec.NewMachine(cfg.Kernel, 0),
		mut:          mutation.NewMutator(cfg.Kernel.Target),
		gen:          prog.NewGenerator(cfg.Kernel.Target),
		view:         &sharedView{corp: f.corp, blocks: &f.globalBlocks},
		preds:        map[*corpus.Entry]*entryPrediction{},
		crashSeen:    map[string]*CrashReport{},
		stats:        &f.stats,
		budget:       cfg.Budget,
		sampleEvery:  cfg.SampleEvery,
		scratchCover: trace.NewCover(),
		m:            f.metrics,
		jn:           cfg.Journal,
		cacheSim:     f.cacheSim,
	}
	return f
}

// Corpus exposes the fuzzer's corpus (for directed fuzzing and tests).
func (f *Fuzzer) Corpus() *corpus.Corpus { return f.corp }

// fallbackProb exposes the sequential worker's degraded-fallback logic for
// tests.
func (f *Fuzzer) fallbackProb() float64 { return f.seq.fallbackProb() }

// Run executes the campaign until the budget is exhausted and returns the
// statistics.
func (f *Fuzzer) Run() (*Stats, error) {
	f.cfg.Journal.Record(obs.Event{
		Kind: obs.EventCampaignStart, VM: -1,
		Detail: fmt.Sprintf("%s seed=%d vms=%d budget=%d", f.cfg.Mode, f.cfg.Seed, f.cfg.VMs, f.cfg.Budget),
	})
	stats, err := f.run()
	if err != nil {
		return nil, err
	}
	f.cfg.Journal.Record(obs.Event{
		Kind: obs.EventCampaignEnd, VM: -1, Value: int64(stats.FinalEdges),
		Detail: fmt.Sprintf("execs=%d corpus=%d", stats.Executions, stats.CorpusSize),
	})
	return stats, nil
}

func (f *Fuzzer) run() (*Stats, error) {
	if f.cfg.Online != nil {
		if err := f.initOnline(); err != nil {
			return nil, err
		}
		// Online campaigns always run the epoch-barrier engine: swap
		// scheduling is defined in barrier epochs, even at VMs=1.
		return f.runParallel()
	}
	if f.cfg.VMs > 1 {
		return f.runParallel()
	}
	return f.runSequential()
}

// initOnline builds the continual-learning controller against the campaign
// server's currently served model.
func (f *Fuzzer) initOnline() error {
	if f.cfg.Mode != ModeSnowplow {
		return fmt.Errorf("fuzzer: online learning requires Snowplow mode")
	}
	sw, ok := f.cfg.Server.(serve.ModelSwapper)
	if !ok {
		return fmt.Errorf("fuzzer: online learning requires a hot-swappable server (serve.ModelSwapper), got %T", f.cfg.Server)
	}
	ctl, err := online.New(online.Params{
		Config:         *f.cfg.Online,
		Kernel:         f.cfg.Kernel,
		An:             f.cfg.An,
		Seed:           f.cfg.Seed,
		Current:        sw.Model(),
		TrainWorkers:   f.cfg.OnlineTrainWorkers,
		CollectWorkers: f.cfg.OnlineCollectWorkers,
		Metrics:        f.cfg.Metrics,
	})
	if err != nil {
		return fmt.Errorf("fuzzer: %w", err)
	}
	f.online = ctl
	f.swapper = sw
	return nil
}

// runSequential is the single-VM campaign: the worker is bound directly to
// the shared corpus and merges every result immediately, exactly as the
// original sequential loop did.
func (f *Fuzzer) runSequential() (*Stats, error) {
	w := f.seq
	w.nextSample = w.sampleEvery
	for _, p := range f.cfg.SeedCorpus {
		if err := w.seed(p); err != nil {
			return nil, err
		}
	}
	w.jevent(obs.EventSeed, int64(f.corp.Len()), "")
	for w.cost < w.budget {
		if err := w.step(); err != nil {
			return nil, err
		}
	}
	w.drainPending()
	f.stats.CorpusSize = f.corp.Len()
	f.stats.FinalEdges = f.corp.TotalEdges()
	f.fillCacheStats()
	if len(f.stats.Series) == 0 || f.stats.Series[len(f.stats.Series)-1].Cost < w.cost {
		f.stats.Series = append(f.stats.Series, Point{Cost: w.cost, Edges: f.corp.TotalEdges()})
	}
	f.stats.VMs = []VMStat{{
		VM:         0,
		Executions: f.stats.Executions,
		NewEdges:   f.stats.Yield.edges(),
		Queries:    f.stats.PMMQueries,
		Epochs:     1,
	}}
	return &f.stats, nil
}

// fillCacheStats sets the campaign's cache hit/miss counters: from the
// deterministic simulation when it is running, else mirroring the server's
// wall-clock counters.
func (f *Fuzzer) fillCacheStats() {
	if f.cacheSim != nil {
		f.stats.PMMCacheHits, f.stats.PMMCacheMisses = f.cacheSim.Stats()
		return
	}
	if f.cfg.Server != nil {
		ss := f.cfg.Server.Stats()
		f.stats.PMMCacheHits = ss.CacheHits
		f.stats.PMMCacheMisses = ss.CacheMisses
	}
}

// noteCacheKey accounts one submitted query to the cache simulation: folded
// immediately when this worker owns the simulator (sequential campaigns),
// buffered in submission order for the reconciler otherwise.
func (w *worker) noteCacheKey(p *prog.Prog, traces [][]kernel.BlockID, targets []kernel.BlockID) {
	if w.cacheSim != nil {
		w.cacheSim.Touch(qgraph.HashQuery(p, traces, targets))
	} else if w.trackKeys {
		w.keyBuf = append(w.keyBuf, qgraph.HashQuery(p, traces, targets))
	}
}

// step performs one iteration of the Figure 1 loop. The two modes differ
// only inside the ARGUMENT_MUTATION branch — type selection, instantiation,
// call insertion/removal and fresh generation are shared — exactly as in
// the paper's deployment, which swaps the localizer and nothing else.
func (w *worker) step() error {
	entry := w.view.Choose(w.r)
	if entry == nil || w.r.Chance(w.cfg.GenerateProb) {
		p := w.gen.Generate(w.r, 2+w.r.Intn(5))
		_, err := w.execute(p, classGenerate)
		return err
	}

	t := w.mut.SelectType(w.r, entry.Prog)
	if t == mutation.ArgMutation && w.cfg.Mode == ModeSnowplow && !w.r.Chance(w.fallbackProb()) {
		return w.guidedArgMutation(entry)
	}
	class := classOther
	if t == mutation.ArgMutation {
		class = classRandArg
	}
	rec := w.mut.MutateType(w.r, entry.Prog, t)
	_, err := w.execute(rec.Prog, class)
	return err
}

// fallbackProb is the effective random-localization probability for this
// round: the configured FallbackProb while serving is healthy, raised to
// DegradedFallbackProb while it is not (§3.4's graceful degradation). A
// degraded round also sheds pending inference queries, so the fuzzer's
// in-flight window drains instead of accumulating against a sick server.
func (w *worker) fallbackProb() float64 {
	fb := w.cfg.FallbackProb
	if w.cfg.Server == nil || w.cfg.Server.Healthy() {
		w.noteHealth(true)
		return fb
	}
	w.noteHealth(false)
	w.stats.DegradedSteps++
	if w.m != nil {
		w.m.degradedSteps.Inc()
	}
	w.shedPending()
	if w.cfg.DegradedFallbackProb > fb {
		fb = w.cfg.DegradedFallbackProb
	}
	return fb
}

// shedPending abandons every in-flight inference query. Reply channels are
// buffered and delivered exactly once, so dropping the references leaks
// neither goroutines nor memory beyond the reply value itself.
func (w *worker) shedPending() {
	for _, st := range w.preds {
		if st.reply != nil {
			st.reply = nil
			st.targets = nil
			w.stats.PMMShed++
			if w.m != nil {
				w.m.shed.Inc()
			}
		}
	}
}

// sanitizeSlots drops slot references outside the program's mutation
// surface. Predictions cross a serving boundary and may be corrupt or
// stale; they must never crash the mutator.
func (w *worker) sanitizeSlots(p *prog.Prog, slots []prog.GlobalSlot) []prog.GlobalSlot {
	valid := slots[:0]
	for _, gs := range slots {
		if gs.Call < 0 || gs.Call >= len(p.Calls) ||
			gs.Slot < 0 || gs.Slot >= len(p.Calls[gs.Call].Meta.Slots()) {
			w.stats.PMMInvalidSlots++
			if w.m != nil {
				w.m.invalidSlots.Inc()
			}
			continue
		}
		valid = append(valid, gs)
	}
	return valid
}

// guidedArgMutation performs PMM-localized argument mutations on the entry.
// The first time an entry is picked its query is submitted asynchronously
// and the fuzzer falls back to random localization until the prediction
// arrives (hiding inference latency behind mutation work, §3.4). Each
// prediction is consumed exactly once — one burst of argument mutations
// proportional to the number of predicted arguments — and a fresh query is
// issued the next time the entry is picked, so guidance always reflects the
// current coverage frontier.
func (w *worker) guidedArgMutation(entry *corpus.Entry) error {
	if w.cfg.SyncInference {
		return w.syncGuidedArgMutation(entry)
	}
	st := w.predictionFor(entry)
	if st == nil || st.pred == nil {
		// Prediction not ready (or no fresh argument-gated frontier to ask
		// about): random-localizer mutation this round, hiding the
		// inference latency behind ordinary mutation work (§3.4).
		rec := w.mut.MutateType(w.r, entry.Prog, mutation.ArgMutation)
		_, err := w.execute(rec.Prog, classRandArg)
		return err
	}
	slots := w.sanitizeSlots(entry.Prog, st.pred.Slots)
	st.pred = nil // consume: next pick re-queries with fresh targets
	if len(slots) == 0 {
		rec := w.mut.MutateType(w.r, entry.Prog, mutation.ArgMutation)
		_, err := w.execute(rec.Prog, classRandArg)
		return err
	}
	return w.guidedBurst(entry, slots)
}

// guidedBurst performs the PMM-localized argument mutations for one
// prediction: MutationsPerPrediction instantiations per predicted slot
// (§3.4: more predicted arguments -> more mutations of this base), plus
// pairwise slot combinations that probe multi-constraint ladders a
// single-slot mutation cannot cross. Bursts only happen when a prediction
// has actually arrived — the fuzzer never waits for the model — so the
// guided share of the budget is bounded by the serving throughput, exactly
// as in the paper's deployment.
func (w *worker) guidedBurst(entry *corpus.Entry, slots []prog.GlobalSlot) error {
	if len(slots) > 8 {
		slots = slots[:8]
	}
	for _, slot := range slots {
		for j := 0; j < w.cfg.MutationsPerPrediction; j++ {
			if w.cost >= w.budget {
				return nil
			}
			rec := w.mut.MutateArgs(w.r, entry.Prog, []prog.GlobalSlot{slot})
			if _, err := w.execute(rec.Prog, classGuided); err != nil {
				return err
			}
		}
	}
	if len(slots) >= 2 {
		for j := 0; j < w.cfg.MutationsPerPrediction; j++ {
			if w.cost >= w.budget {
				return nil
			}
			a := slots[w.r.Intn(len(slots))]
			b := slots[w.r.Intn(len(slots))]
			if a == b {
				continue
			}
			rec := w.mut.MutateArgs(w.r, entry.Prog, []prog.GlobalSlot{a, b})
			if _, err := w.execute(rec.Prog, classGuided); err != nil {
				return err
			}
		}
	}
	return nil
}

// syncGuidedArgMutation is the ablated integration: block on inference for
// every guided round. The simulated budget is unaffected (inference is
// off-box), but wall-clock throughput collapses — the effect §5.5 measures.
func (w *worker) syncGuidedArgMutation(entry *corpus.Entry) error {
	targets := w.queryTargets(entry)
	if len(targets) == 0 {
		rec := w.mut.MutateType(w.r, entry.Prog, mutation.ArgMutation)
		_, err := w.execute(rec.Prog, classRandArg)
		return err
	}
	w.stats.PMMQueries++
	if w.m != nil {
		w.m.queries.Inc()
	}
	w.noteCacheKey(entry.Prog, entry.Traces, targets)
	pred, err := w.cfg.Server.Infer(serve.Query{Prog: entry.Prog, Traces: entry.Traces, Targets: targets})
	if err != nil {
		w.countReplyFailed()
		rec := w.mut.MutateType(w.r, entry.Prog, mutation.ArgMutation)
		_, execErr := w.execute(rec.Prog, classRandArg)
		return execErr
	}
	w.countReplyOK()
	slots := w.sanitizeSlots(entry.Prog, pred.Slots)
	if len(slots) == 0 {
		rec := w.mut.MutateType(w.r, entry.Prog, mutation.ArgMutation)
		_, execErr := w.execute(rec.Prog, classRandArg)
		return execErr
	}
	return w.guidedBurst(entry, slots)
}

// predictionFor returns the entry's cached prediction state, submitting or
// refreshing the asynchronous query as needed and harvesting a completed
// reply if one is available. In deferred-harvest (parallel) mode replies
// become visible only at epoch barriers, so prediction availability is a
// function of simulated time, not wall-clock arrival order.
func (w *worker) predictionFor(entry *corpus.Entry) *entryPrediction {
	st := w.preds[entry]
	if st == nil {
		st = &entryPrediction{}
		w.preds[entry] = st
		w.submitQuery(entry, st)
		return st
	}
	if st.reply != nil && !w.deferHarvest {
		select {
		case pred := <-st.reply:
			st.reply = nil
			if pred.Err != nil {
				// Terminal serving failure (deadline, retries
				// exhausted, closed): no guidance this round; the
				// random fallback covers the base.
				w.countReplyFailed()
			} else {
				st.pred = &pred
				w.countReplyOK()
			}
		default:
		}
	}
	// Consumed (or never-answered) prediction with no query in flight:
	// resubmit against the current frontier.
	if st.pred == nil && st.reply == nil {
		w.submitQuery(entry, st)
	}
	return st
}

// harvestPending blocks for every outstanding prediction reply and makes
// the results available to the next epoch. The reconciler calls this at
// epoch start; serving deadlines and retry budgets bound the wait, and
// reply channels are buffered exactly-once, so the drain always
// terminates.
func (w *worker) harvestPending() {
	for ; w.phantom > 0; w.phantom-- {
		w.countReplyOK()
	}
	for _, st := range w.preds {
		if st.reply == nil {
			continue
		}
		pred := <-st.reply
		st.reply = nil
		if pred.Err != nil {
			w.countReplyFailed()
		} else {
			st.pred = &pred
			w.countReplyOK()
		}
	}
}

// countReplyOK / countReplyFailed tally a terminal inference outcome into
// the campaign stats and, when attached, the instrument bundle.
func (w *worker) countReplyOK() {
	w.stats.PMMPredictions++
	if w.m != nil {
		w.m.predictions.Inc()
	}
}

func (w *worker) countReplyFailed() {
	w.stats.PMMFailed++
	if w.m != nil {
		w.m.predFailed.Inc()
	}
}

// submitQuery asks PMM which arguments of the base to mutate, targeting
// uncovered frontier blocks near the base's coverage.
func (w *worker) submitQuery(entry *corpus.Entry, st *entryPrediction) {
	if !w.cfg.Server.Healthy() {
		return // degraded serving: shed instead of queueing more work
	}
	targets := w.queryTargets(entry)
	if len(targets) == 0 {
		return
	}
	reply, err := w.cfg.Server.InferAsync(serve.Query{
		Prog:    entry.Prog,
		Traces:  entry.Traces,
		Targets: targets,
	})
	if err != nil {
		return // server closed: the random fallback already covers this base
	}
	w.stats.PMMQueries++
	if w.m != nil {
		w.m.queries.Inc()
	}
	w.noteCacheKey(entry.Prog, entry.Traces, targets)
	st.reply = reply
	st.targets = targets
}

// queryTargets picks desired targets for a base: frontier blocks of its
// coverage that the whole campaign has not covered yet and that sit behind
// argument-dependent branches. State-gated branches (counters) cannot be
// flipped by argument mutation, so asking PMM about them only produces
// unusable localizations; the gating predicate's class is static CFG
// information the fuzzer already has.
func (w *worker) queryTargets(entry *corpus.Entry) []kernel.BlockID {
	alts := w.cfg.An.Frontier(entry.Blocks)
	var fresh []kernel.BlockID
	seen := map[kernel.BlockID]bool{}
	for _, alt := range alts {
		if seen[alt.Entry] || w.view.HasBlock(alt.Entry) {
			continue
		}
		switch w.cfg.Kernel.Block(alt.From).Pred.Kind {
		case kernel.PredCounterGT, kernel.PredCounterEQ:
			continue
		}
		seen[alt.Entry] = true
		fresh = append(fresh, alt.Entry)
	}
	if len(fresh) > w.cfg.MaxQueryTargets {
		w.r.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
		fresh = fresh[:w.cfg.MaxQueryTargets]
	}
	return fresh
}

// yieldClass attributes an execution to a work class for YieldStats.
type yieldClass int

const (
	classGenerate yieldClass = iota
	classGuided
	classRandArg
	classOther
)

func (w *worker) recordYield(class yieldClass, newEdges int) {
	if w.m != nil {
		w.m.recordYield(class, newEdges)
	}
	y := &w.stats.Yield
	switch class {
	case classGenerate:
		y.GenerateExecs++
		y.GenerateEdges += int64(newEdges)
	case classGuided:
		y.GuidedExecs++
		y.GuidedEdges += int64(newEdges)
	case classRandArg:
		y.RandArgExecs++
		y.RandArgEdges += int64(newEdges)
	default:
		y.OtherMutExecs++
		y.OtherMutEdges += int64(newEdges)
	}
}

// execute runs a program, charges its cost, triages the result, and
// updates corpus and crash records.
func (w *worker) execute(p *prog.Prog, class yieldClass) (*exec.Result, error) {
	var t0 time.Time
	if w.m != nil {
		t0 = time.Now()
	}
	res, err := w.exe.Run(p)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: %w", err)
	}
	w.stats.Executions++
	if w.m != nil {
		w.m.execs.Inc()
		w.m.execLatency.Observe(time.Since(t0).Nanoseconds())
	}
	w.charge(int64(res.Cost))
	if res.Crash != nil {
		if _, seen := w.crashSeen[res.Crash.Title]; !seen {
			report := &CrashReport{Spec: res.Crash, ProgText: p.Serialize(), Cost: w.cost}
			w.crashSeen[res.Crash.Title] = report
			w.stats.Crashes = append(w.stats.Crashes, report)
			if w.m != nil {
				w.m.crashes.Inc()
			}
			w.jevent(obs.EventCrash, 0, res.Crash.Title)
		}
		w.recordYield(class, 0)
		return res, nil
	}
	cover := trace.EdgesOfInto(w.scratchCover, res)
	blocks := *trace.BlockSetOfInto(&w.scratchBlocks, res)
	if w.cfg.MinimizeCorpus && len(p.Calls) > 1 && w.view.NewEdges(cover) > 0 {
		p, res, cover, blocks = w.minimize(p, res, cover)
	}
	newEdges := w.view.Add(p, cover, blocks, res.CallTraces)
	if newEdges > 0 {
		w.jevent(obs.EventNewEdges, int64(newEdges), "")
	}
	w.recordYield(class, newEdges)
	return res, nil
}

// minimize implements Syzkaller's triage minimization: drop calls (last to
// first) while the program still contributes every new edge it was about to
// add. Each trial execution is charged to the budget.
func (w *worker) minimize(p *prog.Prog, res *exec.Result, cover *trace.Cover) (*prog.Prog, *exec.Result, *trace.Cover, trace.BlockSet) {
	must := trace.NewCover()
	total := w.view.TotalCover()
	for _, e := range cover.Edges() {
		if !total.Has(e) {
			must.Add(e)
		}
	}
	best, bestRes, bestCover := p, res, cover
	for i := len(best.Calls) - 1; i >= 0; i-- {
		if len(best.Calls) == 1 {
			break
		}
		cand := best.Clone()
		cand.RemoveCall(i)
		var t0 time.Time
		if w.m != nil {
			t0 = time.Now()
		}
		candRes, err := w.exe.Run(cand)
		if err != nil || candRes.Crash != nil {
			continue
		}
		w.stats.Executions++
		if w.m != nil {
			w.m.execs.Inc()
			w.m.execLatency.Observe(time.Since(t0).Nanoseconds())
		}
		w.charge(int64(candRes.Cost))
		candCover := trace.EdgesOf(candRes)
		keeps := true
		for _, e := range must.Edges() {
			if !candCover.Has(e) {
				keeps = false
				break
			}
		}
		if keeps {
			best, bestRes, bestCover = cand, candRes, candCover
		}
	}
	return best, bestRes, bestCover, trace.NewBlockSet(trace.BlocksOf(bestRes))
}

// seed executes and unconditionally retains an initial program.
func (w *worker) seed(p *prog.Prog) error {
	var t0 time.Time
	if w.m != nil {
		t0 = time.Now()
	}
	res, err := w.exe.Run(p)
	if err != nil {
		return err
	}
	w.stats.Executions++
	if w.m != nil {
		w.m.execs.Inc()
		w.m.execLatency.Observe(time.Since(t0).Nanoseconds())
	}
	w.charge(int64(res.Cost))
	if res.Crash != nil {
		return nil
	}
	cover := trace.EdgesOfInto(w.scratchCover, res)
	blocks := *trace.BlockSetOfInto(&w.scratchBlocks, res)
	w.view.Seed(p, cover, blocks, res.CallTraces)
	return nil
}

// charge advances simulated time and, in sequential mode, samples the
// coverage series (parallel campaigns sample at reconcile barriers
// instead).
func (w *worker) charge(cost int64) {
	w.cost += cost
	if w.m != nil && !w.deferHarvest {
		// Sequential campaigns publish simulated time directly; parallel
		// fleets publish the sum at reconcile barriers instead.
		w.m.cost.Set(w.cost)
	}
	if w.sampleEvery <= 0 {
		return
	}
	for w.cost >= w.nextSample {
		w.stats.Series = append(w.stats.Series, Point{Cost: w.nextSample, Edges: w.view.TotalCover().Len()})
		w.nextSample += w.sampleEvery
	}
}

// drainPending harvests predictions still in flight at budget exhaustion.
// Reply channels are buffered and delivered exactly once, so abandoning an
// unharvested reply cannot leak a goroutine.
func (w *worker) drainPending() {
	for _, st := range w.preds {
		if st.reply != nil {
			select {
			case pred := <-st.reply:
				if pred.Err != nil {
					w.countReplyFailed()
				} else {
					w.countReplyOK()
				}
			default:
			}
			st.reply = nil
		}
	}
}
