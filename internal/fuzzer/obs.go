// Campaign observability: the fuzzer's instrument bundle and journal
// plumbing. Everything here is optional — with Config.Metrics and
// Config.Journal nil the hot paths pay one pointer nil check per
// instrumented site and nothing else (the zero-overhead guard in
// obs_bench_test.go enforces it).

package fuzzer

import (
	"fmt"

	"github.com/repro/snowplow/internal/corpus"
	"github.com/repro/snowplow/internal/obs"
)

// campaignMetrics is the fuzzer's instrument bundle. One bundle is shared
// by every VM worker of a campaign; all instruments are lock-free atomics.
type campaignMetrics struct {
	execs *obs.Counter

	// Yield by work class (executions and resulting new edges).
	execsGuided, execsRandArg, execsGenerate, execsOther *obs.Counter
	edgesGuided, edgesRandArg, edgesGenerate, edgesOther *obs.Counter

	crashes *obs.Counter

	// Inference traffic as seen from the fuzz loop.
	queries, predictions, predFailed, shed, invalidSlots, degradedSteps *obs.Counter

	epochs      *obs.Counter
	cost        *obs.Gauge
	execLatency *obs.Histogram
	epochDur    *obs.Histogram
	barrierWait *obs.Histogram
}

// newCampaignMetrics registers the fuzzer's instruments plus pull-model
// gauges over the campaign corpus. reg must be non-nil.
func newCampaignMetrics(reg *obs.Registry, corp *corpus.Corpus) *campaignMetrics {
	m := &campaignMetrics{
		execs:         reg.Counter("fuzzer_execs_total", "execs", "programs executed (all VMs, incl. triage)"),
		execsGuided:   reg.Counter("fuzzer_execs_guided_total", "execs", "PMM-localized argument-mutation executions"),
		execsRandArg:  reg.Counter("fuzzer_execs_randarg_total", "execs", "randomly localized argument-mutation executions"),
		execsGenerate: reg.Counter("fuzzer_execs_generate_total", "execs", "freshly generated program executions"),
		execsOther:    reg.Counter("fuzzer_execs_othermut_total", "execs", "call insertion/removal executions"),
		edgesGuided:   reg.Counter("fuzzer_new_edges_guided_total", "edges", "new edges from PMM-guided mutations"),
		edgesRandArg:  reg.Counter("fuzzer_new_edges_randarg_total", "edges", "new edges from random argument mutations"),
		edgesGenerate: reg.Counter("fuzzer_new_edges_generate_total", "edges", "new edges from generated programs"),
		edgesOther:    reg.Counter("fuzzer_new_edges_othermut_total", "edges", "new edges from call insertion/removal"),
		crashes:       reg.Counter("fuzzer_crashes_total", "crashes", "unique crash titles (per VM dedup)"),
		queries:       reg.Counter("fuzzer_pmm_queries_total", "queries", "inference queries submitted"),
		predictions:   reg.Counter("fuzzer_pmm_predictions_total", "predictions", "predictions received and usable"),
		predFailed:    reg.Counter("fuzzer_pmm_failed_total", "queries", "queries with terminal serving errors"),
		shed:          reg.Counter("fuzzer_pmm_shed_total", "queries", "pending queries abandoned while serving was unhealthy"),
		invalidSlots:  reg.Counter("fuzzer_pmm_invalid_slots_total", "slots", "predicted slots rejected as out of range"),
		degradedSteps: reg.Counter("fuzzer_degraded_steps_total", "steps", "mutation rounds taken while serving was unhealthy"),
		epochs:        reg.Counter("fuzzer_epochs_total", "epochs", "reconcile epochs completed (fleet-wide)"),
		cost:          reg.Gauge("fuzzer_cost_blocks", "blocks", "fleet simulated cost consumed so far"),
		execLatency:   reg.Histogram("fuzzer_exec_latency_ns", "ns", "wall-clock latency of one program execution", obs.LatencyBucketsNs()),
		epochDur:      reg.Histogram("fuzzer_epoch_duration_ns", "ns", "wall-clock duration of one VM's epoch slice", obs.LatencyBucketsNs()),
		barrierWait:   reg.Histogram("fuzzer_barrier_wait_ns", "ns", "wall-clock time a VM waited at a reconcile barrier", obs.LatencyBucketsNs()),
	}
	reg.GaugeFunc("corpus_size", "programs", "programs in the shared corpus", func() int64 {
		return int64(corp.Len())
	})
	reg.GaugeFunc("corpus_edges", "edges", "total edge coverage of the shared corpus", func() int64 {
		return int64(corp.TotalEdges())
	})
	reg.GaugeFunc("corpus_snapshot_epoch", "epochs", "copy-on-write snapshot generation of the corpus entry list", func() int64 {
		return int64(corp.Epoch())
	})
	return m
}

// vmGauges are one VM's health gauges, refreshed at every reconcile barrier
// so a live /metrics scrape shows per-VM progress and contention
// mid-campaign. Names follow the documented fuzzer_vm<i>_* pattern.
type vmGauges struct {
	execs, newEdges, queries, queueWaitNs *obs.Gauge
}

func newVMGauges(reg *obs.Registry, vm int) *vmGauges {
	return &vmGauges{
		execs:       reg.Gauge(fmt.Sprintf("fuzzer_vm%d_execs", vm), "execs", "VM's executions so far"),
		newEdges:    reg.Gauge(fmt.Sprintf("fuzzer_vm%d_new_edges", vm), "edges", "VM's reconciled new-edge yield so far"),
		queries:     reg.Gauge(fmt.Sprintf("fuzzer_vm%d_queries", vm), "queries", "VM's inference queries so far"),
		queueWaitNs: reg.Gauge(fmt.Sprintf("fuzzer_vm%d_queue_wait_ns", vm), "ns", "VM's accumulated barrier wait"),
	}
}

// recordYieldMetrics mirrors recordYield into the instrument bundle.
func (m *campaignMetrics) recordYield(class yieldClass, newEdges int) {
	switch class {
	case classGenerate:
		m.execsGenerate.Inc()
		m.edgesGenerate.Add(int64(newEdges))
	case classGuided:
		m.execsGuided.Inc()
		m.edgesGuided.Add(int64(newEdges))
	case classRandArg:
		m.execsRandArg.Inc()
		m.edgesRandArg.Add(int64(newEdges))
	default:
		m.execsOther.Inc()
		m.edgesOther.Add(int64(newEdges))
	}
}

// jevent records (or, mid-epoch in parallel mode, buffers) one journal
// event on behalf of this worker. Parallel workers never touch the shared
// journal directly: their events queue locally and the reconciler flushes
// them at the barrier in ascending VM order, which is what makes journal
// sequence numbers a pure function of the seed rather than of goroutine
// scheduling.
func (w *worker) jevent(kind string, value int64, detail string) {
	if w.jn == nil {
		return
	}
	e := obs.Event{Kind: kind, VM: w.id, Epoch: w.epoch, Cost: w.cost, Value: value, Detail: detail}
	if w.deferHarvest {
		w.events = append(w.events, e)
		return
	}
	w.jn.Record(e)
}

// noteHealth records degraded/recovered journal transitions. Health is a
// wall-clock observable, so these events are excluded from the journal
// determinism guarantee (they cannot occur in fault-free campaigns).
func (w *worker) noteHealth(healthy bool) {
	if w.jn == nil || healthy == !w.degraded {
		return
	}
	w.degraded = !healthy
	if healthy {
		w.jevent(obs.EventRecovered, 0, "")
	} else {
		w.jevent(obs.EventDegraded, 0, "")
	}
}
