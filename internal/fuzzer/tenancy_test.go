package fuzzer

import (
	"reflect"
	"testing"

	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

// snowplowCampaignOn runs one synchronous-inference campaign against a
// server built with the given options, optionally as a registered tenant of
// that server rather than through its default tenant.
func snowplowCampaignOn(t *testing.T, seed uint64, opts serve.Options, asTenant bool) *Stats {
	t.Helper()
	m := pmm.NewModel(rng.New(77), pmm.DefaultConfig(), pmm.BuildVocab(testKernel))
	srv := serve.NewServerOpts(m, qgraph.NewBuilder(testKernel, testAn).WithCache(256), opts)
	defer srv.Close()
	var inf serve.Inferrer = srv
	if asTenant {
		h, err := srv.Tenant(serve.TenantConfig{Name: "campaign", Weight: 2})
		if err != nil {
			t.Fatal(err)
		}
		inf = h
	}
	cfg := baselineConfig(seed, 200_000)
	cfg.Mode = ModeSnowplow
	cfg.Server = inf
	cfg.SyncInference = true
	stats, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestCampaignBitIdenticalAcrossServingPlatform is the multi-tenancy
// backward-compat contract: the same campaign produces byte-for-byte
// identical stats whether it runs through a dedicated server's default
// tenant (the pre-tenancy PR-7 path), as a registered tenant of a shared
// server, or on an autoscaling worker pool — with the fused kernels on or
// off. Tenancy and scaling change who is served when, never what is
// predicted.
func TestCampaignBitIdenticalAcrossServingPlatform(t *testing.T) {
	const seed = 57
	base := snowplowCampaignOn(t, seed, serve.Options{Workers: 1}, false)
	if base.FinalEdges == 0 || base.PMMQueries == 0 {
		t.Fatal("baseline campaign did no PMM-guided work")
	}
	variants := []struct {
		name     string
		opts     serve.Options
		asTenant bool
	}{
		{"registered-tenant", serve.Options{Workers: 1}, true},
		{"fused", serve.Options{Workers: 1, Fused: true}, false},
		{"fused-tenant-batched", serve.Options{Workers: 2, BatchSize: 4, Fused: true}, true},
		{"autoscaled", serve.Options{Workers: 1, MinWorkers: 1, MaxWorkers: 4, ScaleHold: 1}, false},
		{"autoscaled-tenant", serve.Options{Workers: 1, MinWorkers: 1, MaxWorkers: 4, ScaleHold: 1, Fused: true}, true},
	}
	for _, v := range variants {
		if got := snowplowCampaignOn(t, seed, v.opts, v.asTenant); !reflect.DeepEqual(got, base) {
			t.Errorf("%s: campaign diverged from the dedicated-server baseline:\nbase: edges=%d execs=%d queries=%d preds=%d cacheHits=%d\ngot:  edges=%d execs=%d queries=%d preds=%d cacheHits=%d",
				v.name,
				base.FinalEdges, base.Executions, base.PMMQueries, base.PMMPredictions, base.PMMCacheHits,
				got.FinalEdges, got.Executions, got.PMMQueries, got.PMMPredictions, got.PMMCacheHits)
		}
	}
}

// TestCampaignQuantReproducible pins the quantized path the same way:
// int8-quantized serving reproduces itself exactly across platform shapes
// (it legitimately differs from the float baseline — weights are rewritten
// dequantized — but must be deterministic and tenancy-invariant).
func TestCampaignQuantReproducible(t *testing.T) {
	const seed = 58
	qbase := snowplowCampaignOn(t, seed, serve.Options{Workers: 1, Quant: true}, false)
	if qbase.FinalEdges == 0 || qbase.PMMQueries == 0 {
		t.Fatal("quantized campaign did no PMM-guided work")
	}
	qTenant := snowplowCampaignOn(t, seed, serve.Options{Workers: 2, BatchSize: 4, Quant: true, Fused: true}, true)
	if !reflect.DeepEqual(qbase, qTenant) {
		t.Fatal("quantized campaign diverged between dedicated server and shared-server tenant")
	}
}
