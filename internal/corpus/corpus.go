// Package corpus manages the fuzzer's corpus of interesting test programs:
// programs whose execution covered edges no earlier corpus program covered.
//
// The corpus is built for many concurrent readers (parallel fuzzing VMs
// picking bases every step) against rare writers (a program joins only when
// it contributes new edges). The read paths — Choose, Entries, Len,
// TotalEdges, Has — never take the write lock: entry listings are served
// from an epoch-cached copy-on-write snapshot behind an atomic pointer
// (invalidated on Add/Seed), the total edge count is an atomic, and the
// text-dedup index is lock-striped so Has from different VMs doesn't
// serialize on one mutex.
package corpus

import (
	"sync"
	"sync/atomic"

	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/trace"
)

// Entry is one corpus program with its recorded coverage.
type Entry struct {
	Prog   *prog.Prog
	Cover  *trace.Cover       // edge coverage of the program
	Blocks trace.BlockSet     // block coverage of the program
	Traces [][]kernel.BlockID // per-call block traces (for query graphs)
	Text   string             // serialized form (deduplication key)
}

// EntryFromTraces rebuilds a corpus entry from its serialized form: the
// parsed program plus its per-call block traces. Cover and block sets are
// recomputed from the traces (trace.CoverOfTraces), so an entry
// reconstructed from a cluster delta or a campaign checkpoint is identical
// to the entry the originating VM built from the live execution result.
func EntryFromTraces(p *prog.Prog, traces [][]kernel.BlockID) *Entry {
	return &Entry{
		Prog:   p,
		Cover:  trace.CoverOfTraces(traces),
		Blocks: trace.BlockSetOfTraces(traces),
		Traces: traces,
		Text:   p.Serialize(),
	}
}

// numStripes shards the text-dedup index. Power of two.
const numStripes = 16

type stripe struct {
	mu sync.RWMutex
	m  map[string]bool
}

// snapshot is one immutable epoch of the entry list. The slice is never
// appended to in place: Add/Seed publish a fresh, larger copy.
type snapshot struct {
	entries []*Entry
}

// Corpus accumulates interesting programs and total coverage. It is safe
// for concurrent use.
type Corpus struct {
	mu         sync.Mutex // serializes writers (Add/Seed)
	snap       atomic.Pointer[snapshot]
	epoch      atomic.Uint64 // bumped on every successful Add/Seed
	totalMu    sync.RWMutex
	total      *trace.Cover
	totalEdges atomic.Int64
	stripes    [numStripes]stripe
}

// New returns an empty corpus.
func New() *Corpus {
	c := &Corpus{total: trace.NewCover()}
	for i := range c.stripes {
		c.stripes[i].m = map[string]bool{}
	}
	c.snap.Store(&snapshot{})
	return c
}

// stripeFor hashes a program text onto its dedup stripe (FNV-1a).
func (c *Corpus) stripeFor(text string) *stripe {
	h := uint32(2166136261)
	for i := 0; i < len(text); i++ {
		h = (h ^ uint32(text[i])) * 16777619
	}
	return &c.stripes[h&(numStripes-1)]
}

func (c *Corpus) hasText(text string) bool {
	st := c.stripeFor(text)
	st.mu.RLock()
	ok := st.m[text]
	st.mu.RUnlock()
	return ok
}

func (c *Corpus) insertText(text string) {
	st := c.stripeFor(text)
	st.mu.Lock()
	st.m[text] = true
	st.mu.Unlock()
}

// publish appends e to a fresh copy of the entry snapshot. Caller holds
// c.mu.
func (c *Corpus) publish(e *Entry) {
	old := c.snap.Load().entries
	entries := make([]*Entry, len(old)+1)
	copy(entries, old)
	entries[len(old)] = e
	c.snap.Store(&snapshot{entries: entries})
	c.epoch.Add(1)
}

// Add inserts the program if its coverage includes edges not yet in the
// corpus total (the update_corpus policy of Figure 1). It returns the
// number of new edges contributed (0 means not added). The accepted entry
// stores clones of cover and blocks, so callers may pass reusable scratch
// sets.
func (c *Corpus) Add(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID) int {
	text := p.Serialize()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hasText(text) {
		return 0
	}
	c.totalMu.Lock()
	n := c.total.Merge(cover)
	c.totalMu.Unlock()
	if n == 0 {
		return 0
	}
	c.totalEdges.Add(int64(n))
	c.insertText(text)
	c.publish(&Entry{Prog: p, Cover: cover.Clone(), Blocks: blocks.Clone(), Traces: traces, Text: text})
	return n
}

// AddEntry inserts a pre-built entry under the same new-edges policy as
// Add, preserving the entry's pointer identity (the parallel reconciler
// uses this so per-VM prediction caches keyed by *Entry survive the merge
// into the shared corpus). The corpus takes ownership of the entry.
func (c *Corpus) AddEntry(e *Entry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hasText(e.Text) {
		return 0
	}
	c.totalMu.Lock()
	n := c.total.Merge(e.Cover)
	c.totalMu.Unlock()
	if n == 0 {
		return 0
	}
	c.totalEdges.Add(int64(n))
	c.insertText(e.Text)
	c.publish(e)
	return n
}

// Seed inserts a program unconditionally (initial seeding), deduplicated by
// text. It reports whether the program was inserted. Like Add, it stores
// clones of cover and blocks.
func (c *Corpus) Seed(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID) bool {
	text := p.Serialize()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hasText(text) {
		return false
	}
	c.totalMu.Lock()
	n := c.total.Merge(cover)
	c.totalMu.Unlock()
	c.totalEdges.Add(int64(n))
	c.insertText(text)
	c.publish(&Entry{Prog: p, Cover: cover.Clone(), Blocks: blocks.Clone(), Traces: traces, Text: text})
	return true
}

// SeedEntry inserts a pre-built entry unconditionally (deduplicated by
// text), preserving pointer identity. It reports whether it was inserted.
func (c *Corpus) SeedEntry(e *Entry) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hasText(e.Text) {
		return false
	}
	c.totalMu.Lock()
	n := c.total.Merge(e.Cover)
	c.totalMu.Unlock()
	c.totalEdges.Add(int64(n))
	c.insertText(e.Text)
	c.publish(e)
	return true
}

// Choose returns a random corpus entry (the choose_test policy), or nil if
// the corpus is empty. It reads the epoch snapshot and takes no lock.
func (c *Corpus) Choose(r *rng.Rand) *Entry {
	entries := c.snap.Load().entries
	if len(entries) == 0 {
		return nil
	}
	return entries[r.Intn(len(entries))]
}

// Len returns the number of corpus programs.
func (c *Corpus) Len() int {
	return len(c.snap.Load().entries)
}

// TotalEdges returns the total number of unique edges covered.
func (c *Corpus) TotalEdges() int {
	return int(c.totalEdges.Load())
}

// TotalCover returns a snapshot copy of the accumulated edge coverage.
func (c *Corpus) TotalCover() *trace.Cover {
	c.totalMu.RLock()
	defer c.totalMu.RUnlock()
	return c.total.Clone()
}

// Entries returns the current epoch's entry snapshot without copying: the
// returned slice is immutable (a new backing array is published on every
// Add/Seed) and must not be modified by the caller. Repeated calls between
// corpus mutations return the same cached slice.
func (c *Corpus) Entries() []*Entry {
	return c.snap.Load().entries
}

// Epoch returns a counter that increments whenever the entry snapshot is
// invalidated by Add/Seed. Callers can compare epochs to detect whether a
// previously fetched Entries slice is still current.
func (c *Corpus) Epoch() uint64 {
	return c.epoch.Load()
}

// NewEdges reports how many of cover's edges are not yet in the corpus
// total, without modifying anything.
func (c *Corpus) NewEdges(cover *trace.Cover) int {
	c.totalMu.RLock()
	defer c.totalMu.RUnlock()
	return c.total.NewEdges(cover)
}

// Has reports whether an identical program is already in the corpus.
func (c *Corpus) Has(p *prog.Prog) bool {
	return c.hasText(p.Serialize())
}

// HasText reports whether a program with this serialized text is already in
// the corpus (the dedup key Add and Seed use).
func (c *Corpus) HasText(text string) bool {
	return c.hasText(text)
}
