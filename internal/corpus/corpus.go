// Package corpus manages the fuzzer's corpus of interesting test programs:
// programs whose execution covered edges no earlier corpus program covered.
package corpus

import (
	"sync"

	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/trace"
)

// Entry is one corpus program with its recorded coverage.
type Entry struct {
	Prog   *prog.Prog
	Cover  *trace.Cover       // edge coverage of the program
	Blocks trace.BlockSet     // block coverage of the program
	Traces [][]kernel.BlockID // per-call block traces (for query graphs)
	Text   string             // serialized form (deduplication key)
}

// Corpus accumulates interesting programs and total coverage. It is safe
// for concurrent use.
type Corpus struct {
	mu      sync.RWMutex
	entries []*Entry
	byText  map[string]bool
	total   *trace.Cover
}

// New returns an empty corpus.
func New() *Corpus {
	return &Corpus{byText: map[string]bool{}, total: trace.NewCover()}
}

// Add inserts the program if its coverage includes edges not yet in the
// corpus total (the update_corpus policy of Figure 1). It returns the
// number of new edges contributed (0 means not added).
func (c *Corpus) Add(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID) int {
	text := p.Serialize()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byText[text] {
		return 0
	}
	n := c.total.Merge(cover)
	if n == 0 {
		return 0
	}
	c.byText[text] = true
	c.entries = append(c.entries, &Entry{Prog: p, Cover: cover, Blocks: blocks, Traces: traces, Text: text})
	return n
}

// Seed inserts a program unconditionally (initial seeding), deduplicated by
// text. It reports whether the program was inserted.
func (c *Corpus) Seed(p *prog.Prog, cover *trace.Cover, blocks trace.BlockSet, traces [][]kernel.BlockID) bool {
	text := p.Serialize()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byText[text] {
		return false
	}
	c.total.Merge(cover)
	c.byText[text] = true
	c.entries = append(c.entries, &Entry{Prog: p, Cover: cover, Blocks: blocks, Traces: traces, Text: text})
	return true
}

// Choose returns a random corpus entry (the choose_test policy), or nil if
// the corpus is empty.
func (c *Corpus) Choose(r *rng.Rand) *Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.entries) == 0 {
		return nil
	}
	return c.entries[r.Intn(len(c.entries))]
}

// Len returns the number of corpus programs.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// TotalEdges returns the total number of unique edges covered.
func (c *Corpus) TotalEdges() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.total.Len()
}

// TotalCover returns a snapshot copy of the accumulated edge coverage.
func (c *Corpus) TotalCover() *trace.Cover {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.total.Clone()
}

// Entries returns a snapshot of the corpus entries.
func (c *Corpus) Entries() []*Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// NewEdges reports how many of cover's edges are not yet in the corpus
// total, without modifying anything.
func (c *Corpus) NewEdges(cover *trace.Cover) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, e := range cover.Edges() {
		if !c.total.Has(e) {
			n++
		}
	}
	return n
}

// Has reports whether an identical program is already in the corpus.
func (c *Corpus) Has(p *prog.Prog) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byText[p.Serialize()]
}
