package corpus

import (
	"sync"
	"testing"

	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/spec"
	"github.com/repro/snowplow/internal/trace"
)

var target = spec.Base()

func coverOf(edges ...trace.Edge) *trace.Cover {
	c := trace.NewCover()
	for _, e := range edges {
		c.Add(e)
	}
	return c
}

func progN(t *testing.T, seed uint64) *prog.Prog {
	t.Helper()
	return prog.NewGenerator(target).Generate(rng.New(seed), 2)
}

func TestAddRequiresNewEdges(t *testing.T) {
	c := New()
	p1 := progN(t, 1)
	if n := c.Add(p1, coverOf(trace.MakeEdge(1, 2)), trace.BlockSet{}, nil); n != 1 {
		t.Fatalf("first add contributed %d", n)
	}
	// Same coverage, different program: rejected.
	p2 := progN(t, 2)
	if n := c.Add(p2, coverOf(trace.MakeEdge(1, 2)), trace.BlockSet{}, nil); n != 0 {
		t.Fatalf("duplicate coverage accepted: %d", n)
	}
	if c.Len() != 1 {
		t.Fatalf("corpus len %d", c.Len())
	}
	// New edge: accepted.
	if n := c.Add(p2, coverOf(trace.MakeEdge(1, 2), trace.MakeEdge(2, 3)), trace.BlockSet{}, nil); n != 1 {
		t.Fatalf("new edge contributed %d", n)
	}
	if c.TotalEdges() != 2 {
		t.Fatalf("total edges %d", c.TotalEdges())
	}
}

func TestAddDeduplicatesByText(t *testing.T) {
	c := New()
	p := progN(t, 3)
	c.Add(p, coverOf(trace.MakeEdge(1, 2)), trace.BlockSet{}, nil)
	if n := c.Add(p.Clone(), coverOf(trace.MakeEdge(9, 9)), trace.BlockSet{}, nil); n != 0 {
		t.Fatal("identical program re-added")
	}
}

func TestSeedUnconditional(t *testing.T) {
	c := New()
	p := progN(t, 4)
	if !c.Seed(p, coverOf(), trace.BlockSet{}, nil) {
		t.Fatal("seed rejected")
	}
	if c.Seed(p.Clone(), coverOf(), trace.BlockSet{}, nil) {
		t.Fatal("duplicate seed accepted")
	}
	if c.Len() != 1 {
		t.Fatal("seed not stored")
	}
}

func TestChoose(t *testing.T) {
	c := New()
	if c.Choose(rng.New(1)) != nil {
		t.Fatal("choose on empty corpus")
	}
	for i := uint64(0); i < 5; i++ {
		c.Seed(progN(t, 10+i), coverOf(trace.MakeEdge(trace.Edge(i).From(), 1)), trace.BlockSet{}, nil)
	}
	r := rng.New(2)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[c.Choose(r).Text] = true
	}
	if len(seen) != c.Len() {
		t.Fatalf("choose visited %d of %d entries", len(seen), c.Len())
	}
}

func TestTotalCoverSnapshot(t *testing.T) {
	c := New()
	c.Seed(progN(t, 20), coverOf(trace.MakeEdge(1, 2)), trace.BlockSet{}, nil)
	snap := c.TotalCover()
	c.Add(progN(t, 21), coverOf(trace.MakeEdge(3, 4)), trace.BlockSet{}, nil)
	if snap.Len() != 1 {
		t.Fatal("snapshot mutated by later add")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(100 + w))
			g := prog.NewGenerator(target)
			for i := 0; i < 50; i++ {
				p := g.Generate(r, 2)
				c.Add(p, coverOf(trace.MakeEdge(trace.Edge(w).From(), trace.Edge(i).From())), trace.BlockSet{}, nil)
				c.Choose(r)
				c.TotalEdges()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("no entries after concurrent adds")
	}
}
