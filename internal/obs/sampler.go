package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Sample is one periodic snapshot of the registry: every counter and gauge
// by name, histograms flattened to <name>_count / <name>_sum.
type Sample struct {
	// ElapsedNs is wall-clock time since the sampler started.
	ElapsedNs int64 `json:"elapsed_ns"`
	// Values maps metric name to value (JSON-encoded with sorted keys).
	Values map[string]int64 `json:"values"`
}

// DefaultSampleInterval is the sampling period used when none is given.
const DefaultSampleInterval = 250 * time.Millisecond

// maxSamples bounds a sampler's retained history (at the default interval,
// several hours of campaign).
const maxSamples = 1 << 16

// Sampler periodically snapshots a Registry into an in-memory time series —
// the raw data for coverage-over-time curves (the paper's Figure 6 shape)
// taken from a live campaign instead of reconstructed from end-state
// totals. Start it before the campaign, Stop it after; Samples may be read
// concurrently while sampling (the /timeseries endpoint does).
type Sampler struct {
	reg      *Registry
	interval time.Duration
	started  time.Time

	mu      sync.Mutex
	samples []Sample

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewSampler creates a sampler over reg. interval <= 0 takes
// DefaultSampleInterval.
func NewSampler(reg *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling goroutine and records an initial sample.
func (s *Sampler) Start() {
	s.started = time.Now()
	s.take()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.take()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts sampling, records a final sample, and returns the series.
func (s *Sampler) Stop() []Sample {
	s.once.Do(func() {
		close(s.stop)
		<-s.done
		s.take()
	})
	return s.Samples()
}

// Samples returns a copy of the series collected so far.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

func (s *Sampler) take() {
	sample := Sample{ElapsedNs: time.Since(s.started).Nanoseconds(), Values: s.reg.Values()}
	s.mu.Lock()
	if len(s.samples) < maxSamples {
		s.samples = append(s.samples, sample)
	}
	s.mu.Unlock()
}

// WriteJSON renders the collected samples as an indented JSON array, as
// served at /timeseries.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Samples())
}
