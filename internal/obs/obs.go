// Package obs is the campaign observability layer: a dependency-free
// registry of typed instruments (atomic counters, gauges, fixed-bucket
// histograms), a bounded ring-buffer journal of structured campaign events,
// a periodic time-series sampler, and an opt-in HTTP endpoint exposing
// /metrics, /journal, /timeseries, expvar and net/http/pprof.
//
// The design constraint is that observability must be free when disabled
// and cheap when enabled. Every instrument method is safe on a nil
// receiver and returns immediately, so instrumented hot paths (the fuzz
// loop, the serving workers) pay a single predictable nil check when no
// registry is attached; with a registry attached, updates are single
// lock-free atomic operations. Readers (the HTTP endpoint, the sampler)
// snapshot instruments without stopping writers.
//
// Nothing in this package participates in campaign determinism: metrics
// and samples are wall-clock observables, like fuzzer.VMStat.QueueWaitNs.
// The journal is the exception — see Journal for its determinism
// guarantee.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe no-ops, so call sites need no "is observability on" branches.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value that can move in both directions.
// All methods are nil-safe no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Observations land in the first
// bucket whose upper bound is >= the value (the last bucket is an implicit
// +Inf overflow). Updates are lock-free: one atomic add on the bucket, the
// sum and the count. All methods are nil-safe no-ops.
type Histogram struct {
	bounds []int64 // ascending upper bounds; counts has len(bounds)+1
	counts []atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// LatencyBucketsNs are the default histogram bounds for nanosecond
// latencies: powers of four from 1µs to ~1s.
func LatencyBucketsNs() []int64 {
	return []int64{1e3, 4e3, 16e3, 64e3, 256e3, 1e6, 4e6, 16e6, 64e6, 256e6, 1e9}
}

// SizeBuckets are the default histogram bounds for small cardinalities
// (batch sizes, queue depths).
func SizeBuckets() []int64 {
	return []int64{1, 2, 4, 8, 16, 32, 64}
}

// Kind names an instrument type in snapshots and rendered output.
type Kind string

// The instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// instrument is one registered metric with its metadata.
type instrument struct {
	name, unit, help string
	kind             Kind
	counter          *Counter
	gauge            *Gauge
	hist             *Histogram
	fn               func() int64 // GaugeFunc
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// Le is the bucket's inclusive upper bound; the overflow bucket
	// reports math.MaxInt64.
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Metric is a point-in-time snapshot of one instrument.
type Metric struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	Unit string `json:"unit,omitempty"`
	Help string `json:"help,omitempty"`
	// Value is the counter count or gauge level (histograms use Sum,
	// Count, Buckets instead).
	Value   int64    `json:"value,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Registry holds named instruments. Registration is idempotent: asking for
// an existing name of the same kind returns the existing instrument, so
// layers can be instrumented independently without coordinating ownership.
// A nil *Registry is valid and returns nil instruments, which are
// themselves nil-safe — the zero-cost disabled path.
type Registry struct {
	mu   sync.Mutex
	ins  map[string]*instrument
	keys []string // registration order; Snapshot sorts by name
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{ins: map[string]*instrument{}}
}

func (r *Registry) register(name, unit, help string, kind Kind) *instrument {
	if in, ok := r.ins[name]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, in.kind))
		}
		return in
	}
	in := &instrument{name: name, unit: unit, help: help, kind: kind}
	r.ins[name] = in
	r.keys = append(r.keys, name)
	return in
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, unit, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.register(name, unit, help, KindCounter)
	if in.counter == nil {
		in.counter = &Counter{}
	}
	return in.counter
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, unit, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.register(name, unit, help, KindGauge)
	if in.gauge == nil {
		in.gauge = &Gauge{}
	}
	return in.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — the pull-model bridge for subsystems that already keep their own
// counters (the tensor pool, the graph cache, the corpus). fn must be safe
// for concurrent use; it is called outside the registry lock's hot path
// but may run from any snapshot reader. Re-registering a name replaces
// its function.
func (r *Registry) GaugeFunc(name, unit, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.register(name, unit, help, KindGauge)
	in.fn = fn
}

// Histogram registers (or returns) the named histogram with the given
// ascending bucket upper bounds (a final +Inf overflow bucket is implicit).
func (r *Registry) Histogram(name, unit, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in := r.register(name, unit, help, KindHistogram)
	if in.hist == nil {
		in.hist = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
	return in.hist
}

const maxInt64 = int64(^uint64(0) >> 1)

// Snapshot returns every instrument's current value, sorted by name. The
// snapshot is per-instrument atomic (histogram bucket counts may trail the
// total by in-flight observations, never lead it).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ins := make([]*instrument, 0, len(r.keys))
	for _, name := range r.keys {
		ins = append(ins, r.ins[name])
	}
	r.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].name < ins[j].name })
	out := make([]Metric, 0, len(ins))
	for _, in := range ins {
		m := Metric{Name: in.name, Kind: in.kind, Unit: in.unit, Help: in.help}
		switch {
		case in.fn != nil:
			m.Value = in.fn()
		case in.counter != nil:
			m.Value = in.counter.Value()
		case in.gauge != nil:
			m.Value = in.gauge.Value()
		case in.hist != nil:
			// Read the total first so count >= sum(buckets) never
			// appears inverted to readers.
			m.Count = in.hist.count.Load()
			m.Sum = in.hist.sum.Load()
			m.Buckets = make([]Bucket, len(in.hist.counts))
			for i := range in.hist.counts {
				le := maxInt64
				if i < len(in.hist.bounds) {
					le = in.hist.bounds[i]
				}
				m.Buckets[i] = Bucket{Le: le, Count: in.hist.counts[i].Load()}
			}
		}
		out = append(out, m)
	}
	return out
}

// WriteText renders the snapshot in a flat, grep-friendly text form:
//
//	name{kind,unit} value
//	name_bucket{le=...} count   (histograms)
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# %s: %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		switch m.Kind {
		case KindHistogram:
			for _, b := range m.Buckets {
				le := "+Inf"
				if b.Le != maxInt64 {
					le = fmt.Sprintf("%d", b.Le)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%s} %d\n", m.Name, le, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", m.Name, m.Sum, m.Name, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s{%s%s} %d\n", m.Name, m.Kind, unitSuffix(m.Unit), m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

func unitSuffix(unit string) string {
	if unit == "" {
		return ""
	}
	return "," + unit
}

// WriteJSON renders the snapshot as an indented JSON array of Metric.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Values flattens the snapshot into name → value for samplers: counters
// and gauges map directly; a histogram h contributes h_count and h_sum.
func (r *Registry) Values() map[string]int64 {
	snap := r.Snapshot()
	out := make(map[string]int64, len(snap))
	for _, m := range snap {
		if m.Kind == KindHistogram {
			out[m.Name+"_count"] = m.Count
			out[m.Name+"_sum"] = m.Sum
			continue
		}
		out[m.Name] = m.Value
	}
	return out
}
