package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the observability endpoints for one registry/journal/
// sampler triple (any of which may be nil):
//
//	/metrics            registry snapshot, text (?format=json for JSON)
//	/journal            retained journal events, JSON
//	/timeseries         sampler series so far, JSON
//	/debug/vars         expvar (Go runtime memstats, cmdline)
//	/debug/pprof/...    net/http/pprof (CPU, heap, goroutine, ...)
//
// The pprof handlers are mounted on this mux explicitly rather than
// relying on net/http/pprof's DefaultServeMux registration, so importing
// obs never changes the default mux and the endpoint stays strictly
// opt-in.
func Handler(reg *Registry, j *Journal, s *Sampler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "snowplow observability\n\n"+
			"/metrics      instrument snapshot (text; ?format=json)\n"+
			"/journal      campaign event journal (json)\n"+
			"/timeseries   sampled metric series (json)\n"+
			"/debug/vars   expvar\n"+
			"/debug/pprof  live profiling (profile, heap, goroutine, ...)\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = j.WriteJSON(w)
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s == nil {
			fmt.Fprint(w, "[]\n")
			return
		}
		_ = s.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr (e.g. ":6060") in a
// background goroutine and returns the bound listener address (useful with
// ":0") and a shutdown function. Serving errors after startup are
// ignored — observability must never take a campaign down.
func Serve(addr string, reg *Registry, j *Journal, s *Sampler) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, j, s)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
