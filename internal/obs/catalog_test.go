package obs_test

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/cluster"
	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/online"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

var vmDigits = regexp.MustCompile(`vm\d+`)

// registerAll runs a small fully instrumented campaign — Snowplow mode so
// the serving/PMM instruments register, VMs=2 so the per-VM gauges and
// epoch metrics register, continual learning on so the online_* instruments
// register — plus an instrumented dataset harvest and training run for the
// collect_*/train_* instruments, and returns every metric name in the
// registry.
func registerAll(t *testing.T) []string {
	t.Helper()
	k := kernel.MustBuild("6.8")
	an := cfa.New(k)
	reg := obs.NewRegistry()
	m := pmm.NewModel(rng.New(77), pmm.DefaultConfig(), pmm.BuildVocab(k))
	srv := serve.NewServerOpts(m, qgraph.NewBuilder(k, an).WithCache(64), serve.Options{
		Workers: 1,
		Metrics: reg,
	})
	defer srv.Close()

	g := prog.NewGenerator(k.Target)
	r := rng.New(0x5eed)
	var seeds []*prog.Prog
	for i := 0; i < 6; i++ {
		seeds = append(seeds, g.Generate(r, 2+r.Intn(3)))
	}
	cfg := fuzzer.Config{
		Mode: fuzzer.ModeSnowplow, Kernel: k, An: an,
		Seed: 9, Budget: 150_000, SeedCorpus: seeds,
		Server: srv, SyncInference: true, VMs: 2,
		Metrics: reg, Journal: obs.NewJournal(0),
		Online: &online.Config{
			Every: 2, Lag: 1, MinCorpus: 2,
			MutationsPerBase: 4, TrainEpochs: 1, TrainBatch: 8,
		},
	}
	if _, err := fuzzer.New(cfg).Run(); err != nil {
		t.Fatal(err)
	}

	// A tiny instrumented cluster campaign (1 loopback worker, checkpoint
	// every barrier) so the cluster_* instruments register.
	spec := cluster.SpecFromConfig(fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: 13, Budget: 40_000, VMs: 2, SeedCorpus: seeds[:4],
	}, nil)
	if _, err := cluster.RunLocal(cluster.Config{
		Spec:            spec,
		Metrics:         reg,
		CheckpointEvery: 4,
		OnCheckpoint:    func(int64, []byte) {},
	}, 1, cluster.WorkerOptions{}); err != nil {
		t.Fatal(err)
	}

	// A tiny instrumented harvest + training run so the collect_* and
	// train_* instruments register too.
	c := dataset.NewCollector(k, an)
	c.MutationsPerBase = 40
	c.Workers = 2
	c.Metrics = reg
	var bases []*prog.Prog
	for i := 0; i < 8; i++ {
		bases = append(bases, g.Generate(r, 2+r.Intn(3)))
	}
	ds, _ := c.Collect(rng.New(11), bases)
	train, val, _ := ds.Split(0.7, 0.2)
	tcfg := pmm.DefaultTrainConfig()
	tcfg.Epochs = 1
	tcfg.Batch = 4
	tcfg.Workers = 2
	tcfg.Metrics = reg
	pmm.Train(qgraph.NewBuilder(k, an), pmm.DefaultConfig(), tcfg, train, val)

	var names []string
	for _, metric := range reg.Snapshot() {
		names = append(names, metric.Name)
	}
	return names
}

// TestCatalogMatchesDoc diffs the live registry against OBSERVABILITY.md's
// instrument catalog in both directions: every registered metric must be
// documented, and every documented metric must still exist. Per-VM gauges
// are documented once under the fuzzer_vm<i>_* pattern.
func TestCatalogMatchesDoc(t *testing.T) {
	docBytes, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read OBSERVABILITY.md: %v", err)
	}
	doc := string(docBytes)

	live := map[string]bool{}
	for _, name := range registerAll(t) {
		live[vmDigits.ReplaceAllString(name, "vm<i>")] = true
	}
	if len(live) < 30 {
		t.Fatalf("only %d metrics registered — instrumented campaign looks incomplete", len(live))
	}
	for name := range live {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("metric %q registered but not documented in OBSERVABILITY.md", name)
		}
	}

	// Reverse direction: every catalog-table row names a live metric. The
	// owner prefix distinguishes catalog rows from journal-kind rows.
	docRow := regexp.MustCompile("(?m)^\\| `((?:fuzzer|corpus|serve|qgraph|nn|train|collect|cluster|online)_[a-z0-9_<>]+)`")
	documented := 0
	for _, match := range docRow.FindAllStringSubmatch(doc, -1) {
		documented++
		if !live[match[1]] {
			t.Errorf("OBSERVABILITY.md documents %q but no such metric registers", match[1])
		}
	}
	if documented < 30 {
		t.Fatalf("only %d catalog rows in OBSERVABILITY.md — catalog table missing?", documented)
	}
}
