package obs_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocAudit enforces the repo's godoc contract: every package
// under internal/ carries a package doc comment beginning "Package <name>"
// stating its role, and every command under cmd/ one beginning "Command".
// CI runs this (plus go vet) so a new package cannot land undocumented.
func TestPackageDocAudit(t *testing.T) {
	for _, root := range []string{"../../internal", "../../cmd"} {
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			dir := filepath.Join(root, e.Name())
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s: %v", dir, err)
			}
			for name, pkg := range pkgs {
				if strings.HasSuffix(name, "_test") {
					continue
				}
				want := "Package " + name + " "
				if name == "main" {
					want = "Command "
				}
				docs := 0
				for file, f := range pkg.Files {
					if f.Doc == nil {
						continue
					}
					docs++
					text := f.Doc.Text()
					if !strings.HasPrefix(text, want) {
						t.Errorf("%s: package doc must start with %q, got %q",
							file, want, firstLine(text))
					}
				}
				if docs == 0 {
					t.Errorf("package %s (%s) has no package doc comment", name, dir)
				}
				if docs > 1 {
					t.Errorf("package %s (%s) has %d package doc comments; keep one canonical doc",
						name, dir, docs)
				}
			}
		}
	}
}

// TestExportedTypeDocAudit requires a doc comment on every exported type in
// the packages listed — the continual-learning package, whose exported
// surface (Controller, Swap, Config, Params) is the hot-swap contract both
// campaign engines program against, and the cluster package, whose exported
// surface (wire messages, negotiation types, checkpoint format) is the
// cross-version compatibility contract between coordinator and workers.
func TestExportedTypeDocAudit(t *testing.T) {
	for _, dir := range []string{"../online", "../cluster"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			for file, f := range pkg.Files {
				for _, decl := range f.Decls {
					gd, ok := decl.(*ast.GenDecl)
					if !ok || gd.Tok != token.TYPE {
						continue
					}
					for _, spec := range gd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok || !ts.Name.IsExported() {
							continue
						}
						if gd.Doc == nil && ts.Doc == nil {
							pos := fset.Position(ts.Pos())
							t.Errorf("%s:%d: exported type %s.%s has no doc comment",
								file, pos.Line, name, ts.Name.Name)
						}
					}
				}
			}
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
