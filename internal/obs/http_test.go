package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fuzzer_execs_total", "execs", "programs executed").Add(12)
	reg.Histogram("serve_latency_ns", "ns", "", LatencyBucketsNs()).Observe(2000)
	j := NewJournal(16)
	j.Record(Event{Kind: EventCampaignStart, VM: -1, Detail: "syzkaller seed=1 vms=1 budget=100"})
	s := NewSampler(reg, DefaultSampleInterval)
	s.Start()
	s.Stop()

	srv := httptest.NewServer(Handler(reg, j, s))
	defer srv.Close()

	// /metrics text form is the golden surface: exact lines, not substrings.
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"# fuzzer_execs_total: programs executed\n",
		"fuzzer_execs_total{counter,execs} 12\n",
		"serve_latency_ns_bucket{le=4000} 1\n",
		"serve_latency_ns_sum 2000\n",
		"serve_latency_ns_count 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics json: %d", code)
	}
	var metrics []Metric
	if err := json.Unmarshal([]byte(body), &metrics); err != nil {
		t.Fatalf("/metrics json: %v", err)
	}
	if len(metrics) != 2 || metrics[0].Name != "fuzzer_execs_total" || metrics[0].Value != 12 {
		t.Fatalf("/metrics json content: %+v", metrics)
	}

	code, body = get(t, srv, "/journal")
	if code != http.StatusOK {
		t.Fatalf("/journal: %d", code)
	}
	var dump struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 1 || dump.Events[0].Kind != EventCampaignStart {
		t.Fatalf("/journal content: %+v", dump)
	}

	code, body = get(t, srv, "/timeseries")
	if code != http.StatusOK {
		t.Fatalf("/timeseries: %d", code)
	}
	var samples []Sample
	if err := json.Unmarshal([]byte(body), &samples); err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2 || samples[len(samples)-1].Values["fuzzer_execs_total"] != 12 {
		t.Fatalf("/timeseries content: %+v", samples)
	}

	if code, _ := get(t, srv, "/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", code)
	}
	if code, _ := get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope: %d", code)
	}
}

func TestServeLifecycle(t *testing.T) {
	reg := NewRegistry()
	addr, shutdown, err := Serve("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	shutdown()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still reachable after shutdown")
	}
}
