package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured campaign event. The fuzzer records the campaign's
// structural history — epoch barriers, new-edge discoveries, deduplicated
// crashes, degraded-serving transitions — rather than a log line per
// execution, so a multi-hour campaign's journal stays small and diffable.
type Event struct {
	// Seq is the journal-assigned global sequence number. Campaign events
	// are recorded in deterministic order (the fuzzer's reconciler flushes
	// per-VM event buffers in ascending VM order at epoch barriers), so
	// for a fixed seed the (Seq, Kind, VM, Epoch, Cost, Value, Detail)
	// tuple stream is identical across runs, and per-VM subsequences are
	// stable across fleet sizes.
	Seq uint64 `json:"seq"`
	// Kind classifies the event; see the Event* constants.
	Kind string `json:"kind"`
	// VM is the originating simulated VM (0 in sequential campaigns, -1
	// for fleet-level events such as epoch barriers).
	VM int `json:"vm"`
	// Epoch is the reconcile epoch the event belongs to (0 before the
	// first barrier and everywhere in sequential campaigns).
	Epoch int64 `json:"epoch"`
	// Cost is the originating VM's simulated cost (blocks executed) when
	// the event was recorded.
	Cost int64 `json:"cost"`
	// Value carries the event's magnitude (new edges added, corpus size…).
	Value int64 `json:"value,omitempty"`
	// Detail is a short human-readable payload (crash title, mode name…).
	Detail string `json:"detail,omitempty"`
}

// The journal event kinds recorded by the fuzzer.
const (
	// EventCampaignStart opens a campaign: Detail is "mode seed=S vms=N
	// budget=B".
	EventCampaignStart = "campaign_start"
	// EventSeed records the initial seed-corpus pass: Value is how many
	// seed programs were retained.
	EventSeed = "seed"
	// EventNewEdges records a program accepted into the (VM-visible)
	// corpus: Value is its new-edge contribution.
	EventNewEdges = "new_edges"
	// EventCrash records a first-seen (per VM) crash title in Detail.
	EventCrash = "crash"
	// EventEpoch records a reconcile barrier: Value is the shared corpus
	// size after the merge, Detail is "edges=E".
	EventEpoch = "epoch"
	// EventDegraded / EventRecovered record inference-health transitions
	// observed by a VM. They depend on wall-clock serving outcomes and are
	// excluded from the journal determinism guarantee (they never occur in
	// fault-free campaigns).
	EventDegraded  = "degraded"
	EventRecovered = "recovered"
	// EventModelTrain records an online-learning retrain kickoff at an
	// epoch barrier: Value is the checkpoint version being trained, Detail
	// is "SPMV bases=N" (the deterministic corpus snapshot size the harvest
	// draws from). Part of the journal determinism guarantee: kickoffs are
	// scheduled purely on barrier epochs and corpus state.
	EventModelTrain = "model_train"
	// EventModelSwap records an online-learning model hot-swap applied at
	// an epoch barrier — the versioned SPMV (SnowPlow Model Version)
	// record. Value is the checkpoint version, Detail is
	// "SPMV digest=<16 hex> f1=<val F1> applied|skipped". The digest is
	// over the canonical serving-form checkpoint bytes, so single-host and
	// cluster campaigns journal byte-identical swap records.
	EventModelSwap = "model_swap"
	// EventCampaignEnd closes a campaign: Value is final edge coverage,
	// Detail is "execs=N corpus=C".
	EventCampaignEnd = "campaign_end"
)

// Journal is a bounded ring buffer of events. Record assigns sequence
// numbers in call order under a mutex; once capacity is reached the oldest
// events are overwritten (Dropped counts them). All methods are nil-safe,
// so an unjournaled campaign pays one nil check per would-be event.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	cap     int
	next    uint64 // next sequence number
	start   int    // ring index of the oldest retained event
	n       int    // retained events
	dropped uint64
}

// DefaultJournalCap bounds journals created with capacity <= 0.
const DefaultJournalCap = 8192

// NewJournal creates a journal retaining up to capacity events.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, capacity), cap: capacity}
}

// NewJournalFrom reconstructs a journal from a checkpoint export: the
// retained events (oldest first, with their original Seq values), the next
// sequence number to assign, and the evicted-event count. If more events
// than capacity are passed, only the newest are retained (the surplus adds
// to dropped), matching what the ring would have kept.
func NewJournalFrom(capacity int, events []Event, next uint64, dropped uint64) *Journal {
	j := NewJournal(capacity)
	if over := len(events) - j.cap; over > 0 {
		events = events[over:]
		dropped += uint64(over)
	}
	copy(j.buf, events)
	j.n = len(events)
	j.next = next
	j.dropped = dropped
	return j
}

// Record appends the event, assigning its sequence number. The passed
// event's Seq field is ignored.
func (j *Journal) Record(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	e.Seq = j.next
	j.next++
	if j.n == j.cap {
		j.buf[j.start] = e
		j.start = (j.start + 1) % j.cap
		j.dropped++
	} else {
		j.buf[(j.start+j.n)%j.cap] = e
		j.n++
	}
	j.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.start+i)%j.cap]
	}
	return out
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Next returns the sequence number the next recorded event will receive
// (checkpoint exports pair it with Events to rebuild the ring exactly).
func (j *Journal) Next() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dropped returns how many events were evicted by the ring bound.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// journalDump is the JSON shape served at /journal.
type journalDump struct {
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// WriteJSON renders the retained events (oldest first) with the dropped
// count, as served at /journal.
func (j *Journal) WriteJSON(w io.Writer) error {
	dump := journalDump{Events: []Event{}}
	if j != nil {
		dump.Dropped = j.Dropped()
		dump.Events = j.Events()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
