package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Everything the hot paths call must be a no-op on nil — this is the
	// disabled-observability contract.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(42)

	var r *Registry
	if r.Counter("x", "", "") != nil || r.Gauge("y", "", "") != nil ||
		r.Histogram("z", "", "", SizeBuckets()) != nil {
		t.Fatal("nil registry returned a live instrument")
	}
	r.GaugeFunc("f", "", "", func() int64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot non-nil")
	}

	var j *Journal
	j.Record(Event{Kind: EventSeed})
	if j.Len() != 0 || j.Dropped() != 0 || j.Events() != nil {
		t.Fatal("nil journal retained something")
	}
	var sb strings.Builder
	if err := j.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryIdempotentAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup", "x", "first")
	b := r.Counter("dup", "x", "second registration ignored")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("dup", "x", "wrong kind")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "ns", "", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 1_000_000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot: %d metrics", len(snap))
	}
	m := snap[0]
	if m.Count != 6 || m.Sum != 1+10+11+100+101+1_000_000 {
		t.Fatalf("count=%d sum=%d", m.Count, m.Sum)
	}
	want := []int64{2, 2, 2} // <=10, <=100, +Inf
	for i, b := range m.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d: got %d want %d", i, b.Count, want[i])
		}
	}
	if m.Buckets[2].Le != maxInt64 {
		t.Fatal("overflow bucket bound")
	}
}

func TestSnapshotSortedAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz", "", "").Add(7)
	r.Gauge("mmm", "", "").Set(-2)
	r.GaugeFunc("aaa", "things", "pull gauge", func() int64 { return 42 })
	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, m := range snap {
		names[i] = m.Name
	}
	if fmt.Sprint(names) != "[aaa mmm zzz]" {
		t.Fatalf("snapshot order: %v", names)
	}
	if snap[0].Value != 42 || snap[1].Value != -2 || snap[2].Value != 7 {
		t.Fatalf("snapshot values: %+v", snap)
	}
}

func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("execs_total", "execs", "programs executed").Add(3)
	r.Gauge("queue_depth", "", "").Set(2)
	r.Histogram("wait_ns", "ns", "", []int64{10}).Observe(5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# execs_total: programs executed\n" +
		"execs_total{counter,execs} 3\n" +
		"queue_depth{gauge} 2\n" +
		"wait_ns_bucket{le=10} 1\n" +
		"wait_ns_bucket{le=+Inf} 0\n" +
		"wait_ns_sum 5\n" +
		"wait_ns_count 1\n"
	if sb.String() != want {
		t.Fatalf("WriteText:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestValuesFlattensHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", "").Add(2)
	r.Histogram("h", "", "", []int64{10}).Observe(7)
	v := r.Values()
	if v["c"] != 2 || v["h_count"] != 1 || v["h_sum"] != 7 {
		t.Fatalf("Values: %v", v)
	}
	if _, ok := v["h"]; ok {
		t.Fatal("histogram leaked an unsuffixed value")
	}
}

func TestJournalRing(t *testing.T) {
	j := NewJournal(3)
	for i := 0; i < 5; i++ {
		j.Record(Event{Kind: EventNewEdges, Value: int64(i)})
	}
	if j.Len() != 3 || j.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", j.Len(), j.Dropped())
	}
	evs := j.Events()
	for i, e := range evs {
		if e.Value != int64(i+2) || e.Seq != uint64(i+2) {
			t.Fatalf("event %d: %+v", i, e)
		}
	}
	var sb strings.Builder
	if err := j.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Dropped != 2 || len(dump.Events) != 3 {
		t.Fatalf("dump: %+v", dump)
	}
}

func TestJournalConcurrentSeq(t *testing.T) {
	j := NewJournal(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.Record(Event{Kind: EventNewEdges})
			}
		}()
	}
	wg.Wait()
	evs := j.Events()
	if len(evs) != 800 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) {
			t.Fatalf("seq gap at %d: %d", i, e.Seq)
		}
	}
}

func TestSampler(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ticks", "", "")
	s := NewSampler(r, time.Millisecond)
	s.Start()
	c.Add(5)
	time.Sleep(10 * time.Millisecond)
	samples := s.Stop()
	if len(samples) < 2 {
		t.Fatalf("only %d samples", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Values["ticks"] != 5 {
		t.Fatalf("final sample: %v", last.Values)
	}
	if again := s.Stop(); len(again) != len(samples) {
		t.Fatal("second Stop changed the series")
	}
}
