// Package cfa performs static control-flow analysis over a synthetic
// kernel, playing the role Angr plays in the paper (§4): recovering the
// control-flow graph, identifying "alternative path entry" blocks reachable
// within one not-taken branch from a test's coverage (§3.2), and computing
// block distances for directed fuzzing.
package cfa

import (
	"sort"

	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/trace"
)

// Alternative is an uncovered block one branch away from covered code.
type Alternative struct {
	// Entry is the uncovered alternative-path entry block.
	Entry kernel.BlockID
	// From is the covered branch block whose other successor Entry is.
	From kernel.BlockID
	// Taken reports whether Entry is From's taken (true) or not-taken
	// (false) successor.
	Taken bool
}

// Analysis holds precomputed CFG indexes for one kernel.
type Analysis struct {
	K *kernel.Kernel

	preds map[kernel.BlockID][]kernel.BlockID
}

// New builds the analysis (successor inversion) for a kernel.
func New(k *kernel.Kernel) *Analysis {
	a := &Analysis{K: k, preds: make(map[kernel.BlockID][]kernel.BlockID, k.NumBlocks())}
	for i := range k.Blocks {
		b := &k.Blocks[i]
		for _, succ := range successors(b) {
			a.preds[succ] = append(a.preds[succ], b.ID)
		}
	}
	return a
}

func successors(b *kernel.Block) []kernel.BlockID {
	switch b.Kind {
	case kernel.BlockBody:
		return []kernel.BlockID{b.Next}
	case kernel.BlockBranch:
		return []kernel.BlockID{b.Taken, b.NotTaken}
	default:
		return nil
	}
}

// Successors returns the static successors of a block.
func (a *Analysis) Successors(id kernel.BlockID) []kernel.BlockID {
	return successors(a.K.Block(id))
}

// Predecessors returns the static predecessors of a block.
func (a *Analysis) Predecessors(id kernel.BlockID) []kernel.BlockID {
	return a.preds[id]
}

// Frontier returns the alternative path entries of a coverage set: for
// every covered branch block, each uncovered successor, in deterministic
// order. These are the candidate targets a mutation could newly reach with
// a single flipped branch (§3.2's red nodes).
func (a *Analysis) Frontier(covered trace.BlockSet) []Alternative {
	var out []Alternative
	covered.ForEach(func(id kernel.BlockID) {
		b := a.K.Block(id)
		if b.Kind != kernel.BlockBranch {
			return
		}
		if !covered.Has(b.Taken) {
			out = append(out, Alternative{Entry: b.Taken, From: id, Taken: true})
		}
		if !covered.Has(b.NotTaken) {
			out = append(out, Alternative{Entry: b.NotTaken, From: id, Taken: false})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Entry < out[j].Entry
	})
	return out
}

// Unreached is the distance reported for blocks that cannot reach (or be
// reached from) the query block.
const Unreached = 1 << 30

// DistancesTo computes, for every block, the minimum number of CFG edges
// from that block to target (BFS over reversed edges). Directed fuzzers use
// this as the seed-selection metric.
func (a *Analysis) DistancesTo(target kernel.BlockID) []int {
	dist := make([]int, a.K.NumBlocks())
	for i := range dist {
		dist[i] = Unreached
	}
	dist[target] = 0
	queue := []kernel.BlockID{target}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range a.preds[cur] {
			if dist[p] > dist[cur]+1 {
				dist[p] = dist[cur] + 1
				queue = append(queue, p)
			}
		}
	}
	return dist
}

// MinDistance returns the smallest distance from any covered block to the
// target, given a distance table from DistancesTo.
func MinDistance(dist []int, covered trace.BlockSet) int {
	min := Unreached
	covered.ForEach(func(b kernel.BlockID) {
		if int(b) < len(dist) && dist[b] < min {
			min = dist[b]
		}
	})
	return min
}

// ReachableFrom returns all blocks reachable from entry, including entry.
func (a *Analysis) ReachableFrom(entry kernel.BlockID) []kernel.BlockID {
	seen := map[kernel.BlockID]bool{entry: true}
	queue := []kernel.BlockID{entry}
	var out []kernel.BlockID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, s := range successors(a.K.Block(cur)) {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HandlerOf returns the syscall variant whose handler contains the block,
// or "" if none (cached linear index built lazily would be overkill; the
// kernel's handlers partition blocks contiguously, so binary search works).
func (a *Analysis) HandlerOf(id kernel.BlockID) string {
	for name, h := range a.K.Handlers {
		for _, b := range h.Blocks {
			if b == id {
				return name
			}
		}
	}
	return ""
}

// DeepBlocks returns blocks whose distance from their handler entry is at
// least minDepth branch decisions — the "hard to reach" targets of Table 5.
func (a *Analysis) DeepBlocks(minDepth int) []kernel.BlockID {
	var out []kernel.BlockID
	for _, h := range a.K.Handlers {
		depth := map[kernel.BlockID]int{h.Entry: 0}
		queue := []kernel.BlockID{h.Entry}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			b := a.K.Block(cur)
			d := depth[cur]
			if b.Kind == kernel.BlockBranch {
				d++
			}
			for _, s := range successors(b) {
				if _, ok := depth[s]; !ok {
					depth[s] = d
					queue = append(queue, s)
				}
			}
		}
		for id, d := range depth {
			if d >= minDepth {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
