package cfa

import (
	"testing"

	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/trace"
)

var (
	testKernel   = kernel.MustBuild("6.8")
	testAnalysis = New(testKernel)
)

func TestPredecessorsInvertSuccessors(t *testing.T) {
	for i := range testKernel.Blocks {
		id := kernel.BlockID(i)
		for _, s := range testAnalysis.Successors(id) {
			found := false
			for _, p := range testAnalysis.Predecessors(s) {
				if p == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("block %d -> %d not in predecessor index", id, s)
			}
		}
	}
}

func coverageOf(t *testing.T, text string) trace.BlockSet {
	t.Helper()
	e := exec.New(testKernel)
	p := prog.MustParse(testKernel.Target, text)
	res, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return trace.NewBlockSet(trace.BlocksOf(res))
}

func TestFrontierOneBranchAway(t *testing.T) {
	covered := coverageOf(t, "r0 = open(\"./file0\", 0x42, 0x1ff)\nread(r0, &b\"00ff\", 0x2)\n")
	alts := testAnalysis.Frontier(covered)
	if len(alts) == 0 {
		t.Fatal("no alternative path entries for a real execution")
	}
	for _, alt := range alts {
		if covered.Has(alt.Entry) {
			t.Fatalf("alternative %d is covered", alt.Entry)
		}
		if !covered.Has(alt.From) {
			t.Fatalf("frontier source %d not covered", alt.From)
		}
		from := testKernel.Block(alt.From)
		if from.Kind != kernel.BlockBranch {
			t.Fatalf("frontier source %d is not a branch", alt.From)
		}
		want := from.NotTaken
		if alt.Taken {
			want = from.Taken
		}
		if want != alt.Entry {
			t.Fatalf("alternative edge mismatch: %+v", alt)
		}
	}
}

func TestFrontierDeterministicOrder(t *testing.T) {
	covered := coverageOf(t, "r0 = open(\"./file0\", 0x42, 0x1ff)\n")
	a := testAnalysis.Frontier(covered)
	b := testAnalysis.Frontier(covered)
	if len(a) != len(b) {
		t.Fatal("frontier sizes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("frontier order not deterministic")
		}
	}
}

func TestDistancesTo(t *testing.T) {
	h := testKernel.Handler("open")
	dist := testAnalysis.DistancesTo(h.Exit)
	if dist[h.Exit] != 0 {
		t.Fatal("distance to self != 0")
	}
	if dist[h.Entry] == Unreached {
		t.Fatal("exit unreachable from entry")
	}
	if dist[h.Entry] <= 0 {
		t.Fatalf("entry->exit distance %d", dist[h.Entry])
	}
	// A block in another handler cannot reach open's exit.
	other := testKernel.Handler("socket")
	if dist[other.Entry] != Unreached {
		t.Fatalf("socket entry reaches open exit: %d", dist[other.Entry])
	}
}

func TestMinDistance(t *testing.T) {
	h := testKernel.Handler("open")
	dist := testAnalysis.DistancesTo(h.Exit)
	covered := trace.NewBlockSet([]kernel.BlockID{h.Entry})
	if got := MinDistance(dist, covered); got != dist[h.Entry] {
		t.Fatalf("MinDistance = %d, want %d", got, dist[h.Entry])
	}
	empty := trace.NewBlockSet(nil)
	if got := MinDistance(dist, empty); got != Unreached {
		t.Fatalf("MinDistance over empty set = %d", got)
	}
}

func TestReachableFromCoversHandler(t *testing.T) {
	h := testKernel.Handler("read")
	reach := testAnalysis.ReachableFrom(h.Entry)
	set := trace.NewBlockSet(reach)
	if !set.Has(h.Exit) {
		t.Fatal("exit not reachable from entry")
	}
	// Reachability stays within the handler (handlers are disjoint CFGs).
	for _, id := range reach {
		inHandler := false
		for _, hb := range h.Blocks {
			if hb == id {
				inHandler = true
				break
			}
		}
		if !inHandler {
			t.Fatalf("block %d reachable from read entry but outside handler", id)
		}
	}
}

func TestDeepBlocksAreDeep(t *testing.T) {
	deep := testAnalysis.DeepBlocks(4)
	if len(deep) == 0 {
		t.Fatal("no deep blocks in kernel (bug chains should guarantee some)")
	}
	shallow := testAnalysis.DeepBlocks(0)
	if len(shallow) <= len(deep) {
		t.Fatal("depth filter not monotone")
	}
}

func TestHandlerOf(t *testing.T) {
	h := testKernel.Handler("open")
	if got := testAnalysis.HandlerOf(h.Entry); got != "open" {
		t.Fatalf("HandlerOf(open entry) = %q", got)
	}
}
