package experiments

import (
	"fmt"
	"io"

	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// AblationResult compares the full design against one disabled component.
type AblationResult struct {
	Name    string
	Full    float64 // eval F1 (or other metric) with the component on
	Ablated float64 // with the component off
	Metric  string
	Comment string
}

// Render prints one ablation row.
func (a AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%-28s %s full %.3f vs ablated %.3f — %s\n",
		a.Name, a.Metric, a.Full, a.Ablated, a.Comment)
}

// AblationSwitchEdges drops the kernel-user context-switch edges (the
// paper's key representational idea, §3.2) and retrains.
func AblationSwitchEdges(h *Harness) AblationResult {
	m, _ := h.Model()
	train, val, eval := h.Splits()
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")

	full := pmm.Evaluate(m, qgraph.NewBuilder(k, an), eval).F1

	b := qgraph.NewBuilder(k, an)
	b.DropCtxSwitch = true
	tcfg := pmm.DefaultTrainConfig()
	tcfg.Epochs = h.Opts.TrainEpochs
	tcfg.Seed = h.Opts.Seed
	h.logf("ablation: retraining without context-switch edges...\n")
	m2, _ := pmm.Train(b, pmm.DefaultConfig(), tcfg, train, val)
	ablated := pmm.Evaluate(m2, b, eval).F1
	return AblationResult{
		Name: "kernel-user switch edges", Metric: "eval F1",
		Full: full, Ablated: ablated,
		Comment: "disconnecting program tree from coverage graph removes cross-space reasoning",
	}
}

// AblationTargetNoise retrains with §3.1 design option (a): exact new
// coverage as targets, no distractors.
func AblationTargetNoise(h *Harness) AblationResult {
	m, _ := h.Model()
	_, _, eval := h.Splits()
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	b := qgraph.NewBuilder(k, an)
	full := pmm.Evaluate(m, b, eval).F1

	// Re-collect with exact targets on the same bases.
	h.logf("ablation: re-collecting dataset with exact targets...\n")
	g := prog.NewGenerator(k.Target)
	r := rng.New(h.Opts.Seed + 0xda7a)
	bases := make([]*prog.Prog, h.Opts.Bases)
	for i := range bases {
		bases[i] = g.Generate(r, 2+r.Intn(4))
	}
	c := dataset.NewCollector(k, an)
	c.MutationsPerBase = h.Opts.MutationsPerBase
	c.ExactTargets = true
	ds, _ := c.Collect(rng.New(h.Opts.Seed+0xc011), bases)
	train2, val2, _ := ds.Split(0.8, 0.1)
	tcfg := pmm.DefaultTrainConfig()
	tcfg.Epochs = h.Opts.TrainEpochs
	tcfg.Seed = h.Opts.Seed
	m2, _ := pmm.Train(b, pmm.DefaultConfig(), tcfg, train2, val2)
	// Evaluate on the NOISY eval set: robustness to fuzzing-time target
	// uncertainty is exactly what option (c) buys.
	ablated := pmm.Evaluate(m2, b, eval).F1
	return AblationResult{
		Name: "noisy target sets (opt c)", Metric: "eval F1 (noisy targets)",
		Full: full, Ablated: ablated,
		Comment: "training on exact targets loses robustness to target uncertainty",
	}
}

// AblationPopularityCap retrains on a dataset collected without the
// popular-block cap of §3.1 and compares evaluation F1 (over-popular target
// blocks crowd the data with redundant examples).
func AblationPopularityCap(h *Harness) AblationResult {
	m, _ := h.Model()
	_, _, eval := h.Splits()
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	b := qgraph.NewBuilder(k, an)
	full := pmm.Evaluate(m, b, eval).F1

	h.logf("ablation: re-collecting dataset without the popularity cap...\n")
	g := prog.NewGenerator(k.Target)
	r := rng.New(h.Opts.Seed + 0xda7a)
	bases := make([]*prog.Prog, h.Opts.Bases)
	for i := range bases {
		bases[i] = g.Generate(r, 3+r.Intn(4))
	}
	c := dataset.NewCollector(k, an)
	c.MutationsPerBase = h.Opts.MutationsPerBase
	c.PopularityCap = 0
	ds, _ := c.Collect(rng.New(h.Opts.Seed+0xc011), bases)
	train2, val2, _ := ds.Split(0.8, 0.1)
	tcfg := pmm.DefaultTrainConfig()
	tcfg.Epochs = h.Opts.TrainEpochs
	tcfg.Seed = h.Opts.Seed
	m2, _ := pmm.Train(b, pmm.DefaultConfig(), tcfg, train2, val2)
	ablated := pmm.Evaluate(m2, b, eval).F1
	return AblationResult{
		Name: "popularity cap", Metric: "eval F1",
		Full: full, Ablated: ablated,
		Comment: "uncapped datasets over-represent popular blocks",
	}
}

// AblationFallback sweeps the Snowplow random-fallback probability and
// reports final coverage per setting.
type FallbackSweep struct {
	Probs []float64
	Edges []int
}

// AblationFallbackSweep runs short Snowplow campaigns at several fallback
// probabilities.
func AblationFallbackSweep(h *Harness) FallbackSweep {
	srv := h.Server("6.8")
	defer srv.Close()
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	sweep := FallbackSweep{Probs: []float64{0.05, 0.1, 0.3, 0.6, 0.9}}
	for _, p := range sweep.Probs {
		h.logf("ablation: fallback prob %.2f...\n", p)
		stats := mustRun(fuzzer.New(fuzzer.Config{
			Mode: fuzzer.ModeSnowplow, Kernel: k, An: an,
			Seed: h.Opts.Seed, Budget: h.Opts.FuzzBudget / 4,
			SeedCorpus:   seedPrograms(h, "6.8", h.Opts.Seed),
			Server:       srv,
			FallbackProb: p,
		}))
		sweep.Edges = append(sweep.Edges, stats.FinalEdges)
	}
	return sweep
}

// Render prints the sweep.
func (s FallbackSweep) Render(w io.Writer) {
	fmt.Fprintf(w, "fallback-probability sweep (final edges; higher prob -> closer to baseline):\n")
	for i, p := range s.Probs {
		fmt.Fprintf(w, "  p=%.2f: %d edges\n", p, s.Edges[i])
	}
}

// AblationDeterminism measures label noise introduced by a noisy collection
// environment (§3.1's motivation for snapshots/virtio): the fraction of
// repeated executions of the same base test whose coverage differs.
func AblationDeterminism(h *Harness) AblationResult {
	k := h.Kernel("6.8")
	g := prog.NewGenerator(k.Target)
	r := rng.New(h.Opts.Seed + 0x401e)
	const n = 50
	noisyDiff, cleanDiff := 0, 0
	noisy := exec.New(k).WithNoise(&exec.NoiseModel{Rand: rng.New(3), InterruptProb: 0.3, SharedState: true})
	clean := exec.New(k)
	for i := 0; i < n; i++ {
		p := g.Generate(r, 3)
		if tracesDiffer(clean, p) {
			cleanDiff++
		}
		if tracesDiffer(noisy, p) {
			noisyDiff++
		}
	}
	return AblationResult{
		Name: "determinism engineering", Metric: "coverage-flip rate",
		Full: float64(cleanDiff) / n, Ablated: float64(noisyDiff) / n,
		Comment: "snapshot+sequential execution eliminates trace nondeterminism (full=clean, ablated=noisy)",
	}
}

func tracesDiffer(e *exec.Executor, p *prog.Prog) bool {
	a, err := e.Run(p)
	if err != nil {
		return true
	}
	b, err := e.Run(p)
	if err != nil {
		return true
	}
	if len(a.CallTraces) != len(b.CallTraces) {
		return true
	}
	for i := range a.CallTraces {
		if len(a.CallTraces[i]) != len(b.CallTraces[i]) {
			return true
		}
		for j := range a.CallTraces[i] {
			if a.CallTraces[i][j] != b.CallTraces[i][j] {
				return true
			}
		}
	}
	return false
}
