package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/trace"
)

// QuantConfigResult is one cell of the fused×quant inference matrix.
type QuantConfigResult struct {
	Name  string
	Fused bool
	Quant bool
	// NsPerOp is the best (minimum) per-round time of one PredictBatch
	// forward pass. Contention on shared hardware only ever adds time, so
	// the per-config minimum across interleaved rounds is the estimator
	// closest to the kernels' intrinsic cost.
	NsPerOp int64
	// Speedup is baseline (unfused float64) NsPerOp over this config's.
	Speedup float64
	// Digest is sha256 over the batch's probability stream — identical
	// across fused/unfused at the same precision, and stable per seed for
	// the quantized pair.
	Digest string
	// MaxAbsErr is the largest |prob - baselineProb| across the batch
	// (zero for the float64 configs; the quantization error for int8).
	MaxAbsErr float64
}

// QuantResult reproduces the tentpole perf claim: the fused int8-weight
// inference path against the unfused float64 baseline on the same
// PredictBatch workload, with output digests proving what each path
// computed.
type QuantResult struct {
	Batch  int // graphs per forward pass
	Rounds int // interleaved measurement rounds
	Iters  int // forward passes per round per config
	Rows   []QuantConfigResult
}

// Quant measures the fused×quant inference matrix. Every config runs its
// own deserialized copy of the harness model (quantization rewrites
// weights), and the configs are timed in interleaved rounds — config A and
// config B of the same round share the same seconds of machine noise — with
// per-config minima across rounds, so a load burst cannot masquerade as (or
// mask) a kernel speedup.
func Quant(h *Harness) QuantResult {
	m, _ := h.Model()
	var ckpt bytes.Buffer
	if err := m.Save(&ckpt); err != nil {
		panic(err)
	}

	gs := quantBatch(h, 6)
	res := QuantResult{Batch: len(gs), Rounds: 9, Iters: 4}
	if h.Opts.Repeats > res.Rounds {
		res.Rounds = h.Opts.Repeats
	}

	type config struct {
		name         string
		fused, quant bool
		model        *pmm.Model
		probs        [][]float64
		rounds       []int64
	}
	configs := []*config{
		{name: "unfused_f64"},
		{name: "fused_f64", fused: true},
		{name: "unfused_quant", quant: true},
		{name: "fused_quant", fused: true, quant: true},
	}
	for _, c := range configs {
		cm, err := pmm.Load(bytes.NewReader(ckpt.Bytes()))
		if err != nil {
			panic(err)
		}
		cm.Freeze()
		if c.quant {
			if err := cm.Quantize(); err != nil {
				panic(err)
			}
		}
		if c.fused {
			cm.EnableFused()
		}
		c.model = cm
		_, c.probs = cm.PredictBatch(gs) // warm pools, capture outputs
	}

	h.logf("quant matrix: %d configs x %d rounds x %d iters, batch %d...\n",
		len(configs), res.Rounds, res.Iters, len(gs))
	for round := 0; round < res.Rounds; round++ {
		for _, c := range configs {
			start := time.Now()
			for i := 0; i < res.Iters; i++ {
				c.model.PredictBatch(gs)
			}
			c.rounds = append(c.rounds, time.Since(start).Nanoseconds()/int64(res.Iters))
		}
	}

	base := configs[0]
	baseBest := minInt64(base.rounds)
	for _, c := range configs {
		best := minInt64(c.rounds)
		row := QuantConfigResult{
			Name:    c.name,
			Fused:   c.fused,
			Quant:   c.quant,
			NsPerOp: best,
			Digest:  probDigest(c.probs),
		}
		if best > 0 {
			row.Speedup = float64(baseBest) / float64(best)
		}
		for i := range c.probs {
			for j := range c.probs[i] {
				if d := math.Abs(c.probs[i][j] - base.probs[i][j]); d > row.MaxAbsErr {
					row.MaxAbsErr = d
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// quantBatch builds the PredictBatch workload: count executed programs with
// their traces and frontier targets, encoded as query graphs.
func quantBatch(h *Harness, count int) []*qgraph.Graph {
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	b := qgraph.NewBuilder(k, an)
	g := prog.NewGenerator(k.Target)
	r := rng.New(h.Opts.Seed + 0x4a7)
	ex := exec.New(k)
	gs := make([]*qgraph.Graph, 0, count)
	for len(gs) < count {
		p := g.Generate(r, 6+r.Intn(5))
		resl, err := ex.Run(p)
		if err != nil {
			continue
		}
		covered := trace.NewBlockSet(trace.BlocksOf(resl))
		var targets []kernel.BlockID
		for i, alt := range an.Frontier(covered) {
			if i >= 12 {
				break
			}
			targets = append(targets, alt.Entry)
		}
		gs = append(gs, b.Build(p, resl.CallTraces, targets))
	}
	return gs
}

// probDigest hashes a prediction's probability stream bit-exactly.
func probDigest(probs [][]float64) string {
	hh := sha256.New()
	var buf [8]byte
	for _, row := range probs {
		for _, p := range row {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
			hh.Write(buf[:])
		}
	}
	return fmt.Sprintf("%x", hh.Sum(nil)[:8])
}

func minInt64(xs []int64) int64 {
	best := xs[0]
	for _, x := range xs[1:] {
		if x < best {
			best = x
		}
	}
	return best
}

// Render prints the matrix with the digest and error columns.
func (r QuantResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== Quantized & fused inference (batch %d, best of %d interleaved rounds x %d iters) ==\n",
		r.Batch, r.Rounds, r.Iters)
	fmt.Fprintf(w, "%-14s %12s %8s %10s %18s\n", "config", "ns/op", "speedup", "max|err|", "prob digest")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %12d %7.2fx %10.2e %18s\n",
			row.Name, row.NsPerOp, row.Speedup, row.MaxAbsErr, row.Digest)
	}
	fmt.Fprintf(w, "float64 pairs share a digest (fusion is bit-exact); the quantized pair shares its own\n")
}
