// The multi-tenant serving benchmark: how much does consolidating N
// concurrent campaigns onto one shared, weighted-fair, autoscaling model
// server cost against giving every campaign its own dedicated server?
//
// For each fleet size the dedicated baseline runs N single-worker servers
// (one per campaign) and the shared side runs one multi-tenant server with
// cross-tenant micro-batching and an autoscaling pool; each campaign drives
// its side with one synchronous submitter for a fixed wall-clock window.
// Reported per scenario: aggregate throughput of both sides, their ratio
// (the consolidation efficiency), and the fairness ratio — the max/min
// per-tenant served share normalized by weight, 1.0 being perfectly fair
// deficit round-robin. The single-campaign scenario doubles as the
// regression guard for the pre-tenancy serving path, measured in interleaved
// rounds so host-load noise hits both sides alike.

package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/repro/snowplow/internal/serve"
)

// TenantScenario is one fleet-size row of the multi-tenant benchmark.
type TenantScenario struct {
	// Tenants is the number of concurrent campaigns.
	Tenants int
	// SharedQPS and DedicatedQPS are aggregate succeeded queries/second on
	// the one-shared-server and N-dedicated-servers platforms.
	SharedQPS    float64
	DedicatedQPS float64
	// QPSRatio is SharedQPS/DedicatedQPS — the consolidation efficiency.
	QPSRatio float64
	// FairnessRatio is max/min per-tenant served count divided by weight on
	// the shared server (1.0 = perfectly weight-proportional service).
	FairnessRatio float64
	// MaxMeanQueueWait is the worst tenant's mean scheduler-queue wait.
	MaxMeanQueueWait time.Duration
	// BatchFill is the shared server's batch occupancy (AvgBatchSize /
	// BatchSize).
	BatchFill float64
	// ScaleUps/ScaleDowns count the shared pool's journaled autoscale
	// decisions; Shed counts admission sheds (zero without an SLO).
	ScaleUps   int64
	ScaleDowns int64
	Shed       int64
}

// TenantsResult is the multi-tenant serving benchmark artifact
// (BENCH_tenants.json).
type TenantsResult struct {
	Scenarios []TenantScenario
	// SingleTenantSharedQPS / SingleTenantDedicatedQPS are the interleaved
	// single-campaign measurements behind the regression figure.
	SingleTenantSharedQPS    float64
	SingleTenantDedicatedQPS float64
	// SingleTenantRegressionPct is how much slower the shared platform
	// serves a lone campaign than a dedicated server (negative = faster).
	SingleTenantRegressionPct float64
	// SpecDigest fingerprints the 16-tenant TenantSpec encoding the
	// benchmark ran (EncodeTenantSpec, SHA-256).
	SpecDigest string
}

// tenantBenchWindow is the per-measurement wall-clock window.
const tenantBenchWindow = 250 * time.Millisecond

// driveTenants hammers each Inferrer with one synchronous submitter for the
// window and returns per-tenant succeeded counts and the aggregate QPS.
func driveTenants(infs []serve.Inferrer, q serve.Query, window time.Duration) ([]int64, float64) {
	counts := make([]int64, len(infs))
	start := time.Now()
	deadline := start.Add(window)
	var wg sync.WaitGroup
	for i, inf := range infs {
		wg.Add(1)
		go func(i int, inf serve.Inferrer) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, err := inf.Infer(q); err == nil {
					counts[i]++
				}
			}
		}(i, inf)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var total int64
	for _, c := range counts {
		total += c
	}
	return counts, float64(total) / elapsed
}

// sharedPlatform builds the consolidated server for n campaigns and returns
// its tenant handles.
func sharedPlatform(h *Harness, n int) (*serve.Server, []serve.Inferrer) {
	maxW := n
	if maxW > 4 {
		maxW = 4
	}
	opts := serve.Options{
		Workers:       1,
		MinWorkers:    1,
		MaxWorkers:    maxW,
		ScaleInterval: 2 * time.Millisecond,
		ScaleHold:     2,
		BatchSize:     8,
		QueueSize:     256,
	}
	if n > 1 {
		// A generous SLO arms queue-wait tracking (for the wait column)
		// without ever shedding a healthy benchmark run. The single-campaign
		// scenario stays on the PR-7-default untracked path, since it is the
		// regression guard for exactly that configuration.
		opts.SLOQueueWait = time.Hour
	}
	srv := h.ServerOpts("6.8", opts)
	infs := make([]serve.Inferrer, n)
	for i := range infs {
		t, err := srv.Tenant(serve.TenantConfig{Name: fmt.Sprintf("t%d", i)})
		if err != nil {
			panic(err)
		}
		infs[i] = t
	}
	return srv, infs
}

// dedicatedPlatform builds n single-worker servers, one per campaign.
func dedicatedPlatform(h *Harness, n int) ([]*serve.Server, []serve.Inferrer) {
	srvs := make([]*serve.Server, n)
	infs := make([]serve.Inferrer, n)
	for i := range srvs {
		srvs[i] = h.ServerOpts("6.8", serve.Options{Workers: 1})
		infs[i] = srvs[i]
	}
	return srvs, infs
}

func fairnessRatio(counts []int64) float64 {
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo <= 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}

// Tenants runs the multi-tenant serving benchmark over 1, 4 and 16
// concurrent campaigns.
func Tenants(h *Harness) TenantsResult {
	k := h.Kernel("6.8")
	q := sampleQuery(h, k)
	var res TenantsResult

	// Warm the model cache before timing anything.
	h.Model()

	for _, n := range []int{1, 4, 16} {
		h.logf("tenants: %d concurrent campaigns...\n", n)
		var sc TenantScenario
		sc.Tenants = n
		// Interleave dedicated and shared rounds so wall-clock noise from a
		// busy host degrades both sides alike.
		const rounds = 3
		var sharedCounts []int64
		for r := 0; r < rounds; r++ {
			srvs, dinfs := dedicatedPlatform(h, n)
			_, dqps := driveTenants(dinfs, q, tenantBenchWindow)
			for _, s := range srvs {
				s.Close()
			}
			sc.DedicatedQPS += dqps

			shared, sinfs := sharedPlatform(h, n)
			counts, sqps := driveTenants(sinfs, q, tenantBenchWindow)
			sc.SharedQPS += sqps
			if sharedCounts == nil {
				sharedCounts = counts
			} else {
				for i, c := range counts {
					sharedCounts[i] += c
				}
			}
			st := shared.Stats()
			sc.ScaleUps += st.ScaleUps
			sc.ScaleDowns += st.ScaleDowns
			sc.Shed += st.Shed
			sc.BatchFill += st.BatchFill / rounds
			for _, ts := range shared.TenantStats() {
				if ts.MeanQueueWait > sc.MaxMeanQueueWait {
					sc.MaxMeanQueueWait = ts.MeanQueueWait
				}
			}
			shared.Close()
		}
		sc.SharedQPS /= rounds
		sc.DedicatedQPS /= rounds
		if sc.DedicatedQPS > 0 {
			sc.QPSRatio = sc.SharedQPS / sc.DedicatedQPS
		}
		sc.FairnessRatio = fairnessRatio(sharedCounts)
		res.Scenarios = append(res.Scenarios, sc)
		if n == 1 {
			res.SingleTenantSharedQPS = sc.SharedQPS
			res.SingleTenantDedicatedQPS = sc.DedicatedQPS
			if sc.DedicatedQPS > 0 {
				res.SingleTenantRegressionPct = 100 * (1 - sc.SharedQPS/sc.DedicatedQPS)
			}
		}
	}

	spec, err := serve.ParseTenantSpec(16, "", 0, 1, 4)
	if err != nil {
		panic(err)
	}
	sum := sha256.Sum256(serve.EncodeTenantSpec(spec))
	res.SpecDigest = hex.EncodeToString(sum[:])
	return res
}

// Render prints the benchmark table.
func (r TenantsResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== Multi-tenant serving (1/4/16 concurrent campaigns) ==\n")
	fmt.Fprintf(w, "%-8s %12s %12s %8s %9s %10s %7s %7s\n",
		"tenants", "shared q/s", "dedic. q/s", "ratio", "fairness", "max wait", "fill", "scale")
	for _, sc := range r.Scenarios {
		fmt.Fprintf(w, "%-8d %12.0f %12.0f %8.2f %9.2f %10v %7.2f %4d/%d\n",
			sc.Tenants, sc.SharedQPS, sc.DedicatedQPS, sc.QPSRatio, sc.FairnessRatio,
			sc.MaxMeanQueueWait.Round(time.Microsecond), sc.BatchFill, sc.ScaleUps, sc.ScaleDowns)
	}
	fmt.Fprintf(w, "single campaign on the shared platform: %.1f%% regression vs a dedicated server\n",
		r.SingleTenantRegressionPct)
	fmt.Fprintf(w, "16-tenant spec digest: %s\n", r.SpecDigest)
}
