package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/repro/snowplow/internal/crash"
	"github.com/repro/snowplow/internal/fuzzer"
)

// CampaignResult aggregates the 7-day-campaign experiments: Table 2 (new vs
// known crashes per run), Table 3 (triage by manifestation), and Table 4
// (the diagnosed named bugs).
type CampaignResult struct {
	Kernel string
	Runs   []CampaignRun
	// Table 2 aggregates.
	SnowplowNewTotal  int // union of new crash titles across Snowplow runs
	SyzkallerNewTotal int
	// Table 3 rows (over the union of Snowplow's new crashes).
	Triage            []crash.CategoryCount
	ReproducibleCount int
	NoReproCount      int
	// Table 4: the named diagnosed bugs and whether Snowplow found them.
	NamedBugs []NamedBugResult
}

// CampaignRun is one mode's single long run (a Table-2 column).
type CampaignRun struct {
	Mode  fuzzer.Mode
	Run   int
	New   int
	Known int
}

// NamedBugResult is one Table-4 row.
type NamedBugResult struct {
	ID       int
	Title    string
	Detector string
	Context  string // failure context / syscall
	Location string // symbolized path
	Status   string // paper-reported status
	Found    bool   // found by Snowplow in this campaign
}

// table4Meta mirrors the paper's Table 4 (context and status columns).
var table4Meta = []struct {
	title, context, status string
}{
	{"KASAN: out-of-bounds Write in ata_pio_sector", "ioctl()", "Fixed"},
	{"general protection fault in native_tss_update_io_bitmap", "io_uring()", "Fixed"},
	{"RCU stall in __sanitizer_cov_trace_pc", "Timer interrupt", "Confirmed"},
	{"GUP (Get User Pages) no longer grows the stack", "mmap()", "Confirmed"},
	{"WARNING in ext4_iomap_begin", "pwrite64()", "Reported"},
	{"kernel BUG in ext4_do_writepages", "Filesystem background operation", "Reported"},
	{"KASAN: slab-use-after-free Read in ext4_search_dir", "open()", "Reported"},
}

// Campaign runs the long side-by-side campaigns on one kernel version and
// triages the results.
func Campaign(h *Harness, version string) CampaignResult {
	opts := h.Opts
	k := h.Kernel(version)
	an := h.Analysis(version)
	tri := crash.NewTriage(k)
	srv := h.Server(version)
	defer srv.Close()

	res := CampaignResult{Kernel: version}

	// Syzbot prehistory: the kernels under test have already been fuzzed
	// continuously by Syzkaller (§5.3.2: "Syzbot has already exhaustively
	// tested those kernels"). A prior baseline campaign populates the
	// known-crash list, so the comparison measures what each system finds
	// beyond the baseline's reach.
	h.logf("campaign: simulating Syzbot prehistory...\n")
	pre := mustRun(fuzzer.New(fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: opts.Seed + 0x515b0, Budget: opts.LongBudget * 2,
		SeedCorpus: seedPrograms(h, version, opts.Seed+0x515b0),
		VMs:        opts.VMs,
	}))
	var preTitles []string
	for _, c := range pre.Crashes {
		preTitles = append(preTitles, c.Spec.Title)
	}
	tri.AddKnown(preTitles)
	h.logf("campaign: prehistory found %d crashes (now on the known list)\n", len(preTitles))

	snowNew := map[string]string{} // title -> crashing prog
	syzNew := map[string]bool{}
	runs := opts.Repeats
	if runs > 2 {
		runs = 2 // the paper repeats the 7-day campaign twice
	}
	// Run every (repetition, mode) campaign concurrently — each campaign is
	// an independent fuzzer over shared read-only artifacts and the
	// thread-safe inference server — then classify in repetition order, so
	// the result (including which run first claims a crash title) is
	// identical to the sequential schedule.
	syzStats := make([]*fuzzer.Stats, runs)
	snowStats := make([]*fuzzer.Stats, runs)
	var wg sync.WaitGroup
	for rep := 0; rep < runs; rep++ {
		seed := opts.Seed + uint64(rep)*7777
		seeds := seedPrograms(h, version, seed)
		h.logf("campaign rep %d: syzkaller + snowplow...\n", rep)
		wg.Add(2)
		go func(rep int, seed uint64) {
			defer wg.Done()
			syzStats[rep] = mustRun(fuzzer.New(fuzzer.Config{
				Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
				Seed: seed, Budget: opts.LongBudget, SeedCorpus: seeds, VMs: opts.VMs,
			}))
		}(rep, seed)
		go func(rep int, seed uint64) {
			defer wg.Done()
			snowStats[rep] = mustRun(fuzzer.New(fuzzer.Config{
				Mode: fuzzer.ModeSnowplow, Kernel: k, An: an,
				Seed: seed, Budget: opts.LongBudget, SeedCorpus: seeds, Server: srv, VMs: opts.VMs,
			}))
		}(rep, seed)
	}
	wg.Wait()
	for rep := 0; rep < runs; rep++ {
		res.Runs = append(res.Runs,
			classifyRun(tri, snowStats[rep], rep, snowNew),
			classifyRunSyz(tri, syzStats[rep], rep, syzNew))
	}
	res.SnowplowNewTotal = len(snowNew)
	res.SyzkallerNewTotal = len(syzNew)

	// Table 3: reproduce each of Snowplow's new crashes.
	h.logf("triage: reproducing %d new crashes...\n", len(snowNew))
	withRepro := map[string]bool{}
	for title, progText := range snowNew {
		repro, err := tri.Reproduce(title, progText)
		withRepro[title] = err == nil && repro != nil
	}
	res.Triage = crash.Tabulate(withRepro)
	for _, ok := range withRepro {
		if ok {
			res.ReproducibleCount++
		} else {
			res.NoReproCount++
		}
	}

	// Table 4: the named diagnosed bugs.
	for i, meta := range table4Meta {
		loc := "?"
		if l, ok := tri.Symbolize(meta.title); ok {
			loc = l.Path
		}
		detector := "N/A"
		for _, bug := range k.Bugs() {
			if bug.Title == meta.title && bug.Detector != "" {
				detector = bug.Detector
			}
		}
		_, found := snowNew[meta.title]
		res.NamedBugs = append(res.NamedBugs, NamedBugResult{
			ID: i + 1, Title: meta.title, Detector: detector,
			Context: meta.context, Location: loc, Status: meta.status, Found: found,
		})
	}
	return res
}

func classifyRun(tri *crash.Triage, stats *fuzzer.Stats, rep int, newAcc map[string]string) CampaignRun {
	var titles []string
	byTitle := map[string]string{}
	for _, c := range stats.Crashes {
		titles = append(titles, c.Spec.Title)
		byTitle[c.Spec.Title] = c.ProgText
	}
	s := tri.Classify(titles)
	for _, title := range s.New {
		if _, ok := newAcc[title]; !ok {
			newAcc[title] = byTitle[title]
		}
	}
	return CampaignRun{Mode: stats.Mode, Run: rep, New: len(s.New), Known: len(s.KnownOld)}
}

func classifyRunSyz(tri *crash.Triage, stats *fuzzer.Stats, rep int, newAcc map[string]bool) CampaignRun {
	var titles []string
	for _, c := range stats.Crashes {
		titles = append(titles, c.Spec.Title)
	}
	s := tri.Classify(titles)
	for _, title := range s.New {
		newAcc[title] = true
	}
	return CampaignRun{Mode: stats.Mode, Run: rep, New: len(s.New), Known: len(s.KnownOld)}
}

// Render prints Tables 2, 3 and 4.
func (r CampaignResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== Table 2: crashes in the long campaign (kernel %s) ==\n", r.Kernel)
	fmt.Fprintf(w, "%-12s %6s %6s %8s\n", "System", "run", "new", "known")
	rows := append([]CampaignRun(nil), r.Runs...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Mode != rows[j].Mode {
			return rows[i].Mode > rows[j].Mode // snowplow first
		}
		return rows[i].Run < rows[j].Run
	})
	for _, run := range rows {
		fmt.Fprintf(w, "%-12s %6d %6d %8d\n", run.Mode, run.Run+1, run.New, run.Known)
	}
	fmt.Fprintf(w, "union of new crashes: snowplow %d, syzkaller %d  (paper: 86 vs 0)\n",
		r.SnowplowNewTotal, r.SyzkallerNewTotal)

	fmt.Fprintf(w, "\n== Table 3: new-crash triage by manifestation ==\n")
	fmt.Fprintf(w, "%-30s %10s %8s\n", "Category", "Repro", "NoRepro")
	for _, row := range r.Triage {
		if row.WithRepro == 0 && row.NoRepro == 0 {
			continue
		}
		fmt.Fprintf(w, "%-30s %10d %8d\n", row.Category, row.WithRepro, row.NoRepro)
	}
	total := r.ReproducibleCount + r.NoReproCount
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(r.ReproducibleCount) / float64(total)
	}
	fmt.Fprintf(w, "reproducible: %d/%d (%.0f%%)  (paper: 57/87, 66%%)\n",
		r.ReproducibleCount, total, pct)

	fmt.Fprintf(w, "\n== Table 4: diagnosed bugs ==\n")
	fmt.Fprintf(w, "%-2s %-55s %-20s %-18s %-10s %-6s\n", "ID", "Bug", "Context", "Location", "Status", "Found")
	for _, b := range r.NamedBugs {
		fmt.Fprintf(w, "%-2d %-55s %-20s %-18s %-10s %-6v\n",
			b.ID, truncate(b.Title, 55), b.Context, b.Location, b.Status, b.Found)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
