package experiments

import (
	"fmt"
	"io"

	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// Table1Result holds the §5.2 selector-performance comparison.
type Table1Result struct {
	PMM   pmm.Metrics
	Rand8 pmm.Metrics
	// Ratios PMM/Rand.8 (paper: F1 2.7x, Jaccard 3.8x).
	F1Ratio, JaccardRatio float64
}

// Table1 trains PMM (cached on the harness) and evaluates it against the
// Rand.8 baseline on the held-out evaluation split.
func Table1(h *Harness) Table1Result {
	m, _ := h.Model()
	_, _, eval := h.Splits()
	k := h.Kernel("6.8")
	b := qgraph.NewBuilder(k, h.Analysis("6.8"))
	var res Table1Result
	res.PMM = pmm.Evaluate(m, b, eval)
	res.Rand8 = pmm.EvaluateRandomK(rng.New(h.Opts.Seed+0xba5e), b, eval, 8)
	if res.Rand8.F1 > 0 {
		res.F1Ratio = res.PMM.F1 / res.Rand8.F1
	}
	if res.Rand8.Jaccard > 0 {
		res.JaccardRatio = res.PMM.Jaccard / res.Rand8.Jaccard
	}
	return res
}

// Render prints the Table-1 rows with the paper's values alongside.
func (r Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== Table 1: promising-argument selector performance ==\n")
	fmt.Fprintf(w, "%-10s %8s %10s %8s %9s\n", "Selector", "F1", "Precision", "Recall", "Jaccard")
	fmt.Fprintf(w, "%-10s %7.1f%% %9.1f%% %7.1f%% %8.1f%%\n", "PMModel",
		r.PMM.F1*100, r.PMM.Precision*100, r.PMM.Recall*100, r.PMM.Jaccard*100)
	fmt.Fprintf(w, "%-10s %7.1f%% %9.1f%% %7.1f%% %8.1f%%\n", "Rand.8",
		r.Rand8.F1*100, r.Rand8.Precision*100, r.Rand8.Recall*100, r.Rand8.Jaccard*100)
	fmt.Fprintf(w, "paper:     PMM 84.2/91.2/81.2/76.1 vs Rand.8 30.3/36.6/37.0/19.9\n")
	fmt.Fprintf(w, "ratio PMM/Rand.8: F1 %.1fx (paper 2.8x), Jaccard %.1fx (paper 3.8x)\n",
		r.F1Ratio, r.JaccardRatio)
}
