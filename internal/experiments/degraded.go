package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/repro/snowplow/internal/faultinject"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/serve"
)

// FaultSweep is the degraded-serving ablation, mirroring the paper's
// fallback ablation (§3.4): Snowplow campaigns against an inference server
// with increasing injected fault rates, with the Syzkaller baseline as the
// floor. Graceful degradation means coverage slides toward — but not below —
// the baseline as the fault rate approaches 1.0, because the fuzzer raises
// its random-fallback probability and sheds queries instead of blocking.
type FaultSweep struct {
	// Rates scale the fault shape; rate 0 is healthy serving.
	Rates []float64
	// Edges is Snowplow's final edge coverage per rate.
	Edges []int
	// Failed, Shed and Degraded are the per-rate robustness counters.
	Failed   []int64
	Shed     []int64
	Degraded []int64
	// BaselineEdges is the Syzkaller run's final coverage (same seed and
	// seed corpus).
	BaselineEdges int
	// Shape is the swept fault model at rate 1.0.
	Shape *faultinject.Model
}

// AblationFaultSweep runs short campaigns across injected fault rates.
func AblationFaultSweep(h *Harness) FaultSweep {
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	budget := h.Opts.FuzzBudget / 4
	seeds := seedPrograms(h, "6.8", h.Opts.Seed)

	shape := h.Opts.FaultModel
	if shape == nil {
		shape = &faultinject.Model{
			DropProb:      0.4,
			TransientProb: 0.3,
			CorruptProb:   0.2,
			LatencyProb:   0.1,
			LatencySpike:  time.Millisecond,
		}
	}

	h.logf("fault sweep: syzkaller baseline...\n")
	baseline := mustRun(fuzzer.New(fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: h.Opts.Seed, Budget: budget,
		SeedCorpus: seeds,
	}))

	sweep := FaultSweep{
		Rates:         []float64{0, 0.25, 0.5, 0.75, 0.95},
		BaselineEdges: baseline.FinalEdges,
		Shape:         shape,
	}
	for i, rate := range sweep.Rates {
		h.logf("fault sweep: rate %.2f...\n", rate)
		model := shape.Scale(rate)
		model.Seed = h.Opts.Seed + uint64(i)*0xfa017
		var fault faultinject.Injector
		if model.Enabled() {
			fault = model
		}
		srv := h.ServerOpts("6.8", serve.Options{Fault: fault})
		stats := mustRun(fuzzer.New(fuzzer.Config{
			Mode: fuzzer.ModeSnowplow, Kernel: k, An: an,
			Seed: h.Opts.Seed, Budget: budget,
			SeedCorpus: seeds,
			Server:     srv,
		}))
		srv.Close()
		sweep.Edges = append(sweep.Edges, stats.FinalEdges)
		sweep.Failed = append(sweep.Failed, stats.PMMFailed)
		sweep.Shed = append(sweep.Shed, stats.PMMShed)
		sweep.Degraded = append(sweep.Degraded, stats.DegradedSteps)
	}
	return sweep
}

// Render prints the sweep next to the baseline floor.
func (s FaultSweep) Render(w io.Writer) {
	fmt.Fprintf(w, "degraded-serving sweep (fault shape %s; syzkaller floor %d edges):\n",
		s.Shape, s.BaselineEdges)
	for i, rate := range s.Rates {
		delta := 0.0
		if s.BaselineEdges > 0 {
			delta = 100 * float64(s.Edges[i]-s.BaselineEdges) / float64(s.BaselineEdges)
		}
		fmt.Fprintf(w, "  rate=%.2f: %6d edges (%+.1f%% vs baseline)  failed=%d shed=%d degraded-steps=%d\n",
			rate, s.Edges[i], delta, s.Failed[i], s.Shed[i], s.Degraded[i])
	}
}
