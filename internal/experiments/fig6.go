package experiments

import (
	"fmt"
	"io"
	"sync"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
)

// CurveBand is the min/mean/max band of repeated coverage runs, sampled on
// a common cost grid.
type CurveBand struct {
	Cost           []int64
	Min, Mean, Max []float64
}

// Fig6Version is one subfigure (6a/6b/6c): both fuzzers on one kernel.
type Fig6Version struct {
	Version   string
	Snowplow  CurveBand
	Syzkaller CurveBand
	// ImprovementPct is Figure 6d: mean final coverage improvement.
	ImprovementPct float64
	// Speedup is how many times faster Snowplow's mean curve reaches
	// Syzkaller's mean final coverage (paper: 5.2x / >4.8x).
	Speedup float64
	// BandsOverlapAtEnd reports whether the two bands still overlap at the
	// final sample (the paper's bands separate early).
	BandsOverlapAtEnd bool
}

// Fig6Result is the full Figure 6.
type Fig6Result struct {
	Versions []Fig6Version
}

// Fig6 runs the repeated side-by-side coverage comparison on kernels 6.8
// (trained-on), 6.9 and 6.10 (generalization). The three versions run
// concurrently (the model is trained once up front; kernels and servers are
// per-version), and results are assembled in version order.
func Fig6(h *Harness) Fig6Result {
	h.Model() // train before fanning out so goroutines don't race to it
	versions := []string{"6.8", "6.9", "6.10"}
	out := make([]Fig6Version, len(versions))
	var wg sync.WaitGroup
	for i, version := range versions {
		wg.Add(1)
		go func(i int, version string) {
			defer wg.Done()
			out[i] = fig6Version(h, version)
		}(i, version)
	}
	wg.Wait()
	return Fig6Result{Versions: out}
}

func fig6Version(h *Harness, version string) Fig6Version {
	opts := h.Opts
	k := h.Kernel(version)
	an := h.Analysis(version)
	srv := h.Server(version)
	defer srv.Close()

	sampleEvery := opts.FuzzBudget / 60
	// Repetitions are independent campaigns; run them (and the two modes
	// inside each) concurrently and collect series by index, so the bands
	// are built from the same runs in the same order as the sequential
	// schedule.
	snowRuns := make([][]fuzzer.Point, opts.Repeats)
	syzRuns := make([][]fuzzer.Point, opts.Repeats)
	var wg sync.WaitGroup
	for rep := 0; rep < opts.Repeats; rep++ {
		seed := opts.Seed + uint64(rep)*101
		seeds := seedPrograms(h, version, seed)
		h.logf("fig6 %s rep %d: syzkaller + snowplow...\n", version, rep)
		wg.Add(2)
		go func(rep int, seed uint64) {
			defer wg.Done()
			syz := mustRun(fuzzer.New(fuzzer.Config{
				Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
				Seed: seed, Budget: opts.FuzzBudget, SampleEvery: sampleEvery,
				SeedCorpus: seeds, VMs: opts.VMs,
			}))
			syzRuns[rep] = syz.Series
		}(rep, seed)
		go func(rep int, seed uint64) {
			defer wg.Done()
			snow := mustRun(fuzzer.New(fuzzer.Config{
				Mode: fuzzer.ModeSnowplow, Kernel: k, An: an,
				Seed: seed, Budget: opts.FuzzBudget, SampleEvery: sampleEvery,
				SeedCorpus: seeds, Server: srv, VMs: opts.VMs,
			}))
			snowRuns[rep] = snow.Series
		}(rep, seed)
	}
	wg.Wait()

	v := Fig6Version{Version: version}
	v.Syzkaller = band(syzRuns, opts.FuzzBudget, sampleEvery)
	v.Snowplow = band(snowRuns, opts.FuzzBudget, sampleEvery)
	syzFinal := lastOf(v.Syzkaller.Mean)
	snowFinal := lastOf(v.Snowplow.Mean)
	if syzFinal > 0 {
		v.ImprovementPct = 100 * (snowFinal - syzFinal) / syzFinal
	}
	v.Speedup = speedup(v.Snowplow, syzFinal, opts.FuzzBudget)
	v.BandsOverlapAtEnd = lastOf(v.Snowplow.Min) <= lastOf(v.Syzkaller.Max)
	return v
}

// seedPrograms builds the common initial seed corpus for one repeat.
func seedPrograms(h *Harness, version string, seed uint64) []*prog.Prog {
	k := h.Kernel(version)
	g := prog.NewGenerator(k.Target)
	r := rng.New(seed + 0x5eed)
	out := make([]*prog.Prog, 20)
	for i := range out {
		out[i] = g.Generate(r, 3+r.Intn(4))
	}
	return out
}

func mustRun(f *fuzzer.Fuzzer) *fuzzer.Stats {
	stats, err := f.Run()
	if err != nil {
		panic(err)
	}
	return stats
}

// band resamples runs onto a common grid and computes min/mean/max.
func band(runs [][]fuzzer.Point, budget, sampleEvery int64) CurveBand {
	var b CurveBand
	for c := sampleEvery; c <= budget; c += sampleEvery {
		b.Cost = append(b.Cost, c)
		min, max, sum := 1e18, -1e18, 0.0
		for _, run := range runs {
			v := float64(coverageAt(run, c))
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		b.Min = append(b.Min, min)
		b.Max = append(b.Max, max)
		b.Mean = append(b.Mean, sum/float64(len(runs)))
	}
	return b
}

// coverageAt returns the last coverage value at or before cost c.
func coverageAt(series []fuzzer.Point, c int64) int {
	cov := 0
	for _, p := range series {
		if p.Cost > c {
			break
		}
		cov = p.Edges
	}
	return cov
}

// speedup finds how much earlier the snowplow mean curve reaches the
// baseline's final coverage.
func speedup(snow CurveBand, syzFinal float64, budget int64) float64 {
	for i, v := range snow.Mean {
		if v >= syzFinal {
			if snow.Cost[i] == 0 {
				return float64(budget)
			}
			return float64(budget) / float64(snow.Cost[i])
		}
	}
	return 1
}

func lastOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

// Render prints Figure 6 as text curves plus the 6d summary rows.
func (r Fig6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== Figure 6: edge coverage, Snowplow vs Syzkaller ==\n")
	for _, v := range r.Versions {
		fmt.Fprintf(w, "\n-- Linux %s --\n", v.Version)
		fmt.Fprintf(w, "%12s  %22s  %22s\n", "cost", "snowplow (min/mean/max)", "syzkaller (min/mean/max)")
		n := len(v.Snowplow.Cost)
		step := n / 8
		if step == 0 {
			step = 1
		}
		for i := 0; i < n; i += step {
			fmt.Fprintf(w, "%12d  %6.0f/%6.0f/%6.0f  %6.0f/%6.0f/%6.0f\n",
				v.Snowplow.Cost[i],
				v.Snowplow.Min[i], v.Snowplow.Mean[i], v.Snowplow.Max[i],
				v.Syzkaller.Min[i], v.Syzkaller.Mean[i], v.Syzkaller.Max[i])
		}
		fmt.Fprintf(w, "final improvement: %+.1f%%  (paper: +7.0%% on 6.8, +8.6%% on 6.9, +7.7%% on 6.10)\n", v.ImprovementPct)
		fmt.Fprintf(w, "time-to-baseline-final speedup: %.1fx  (paper: 5.2x on 6.8, >4.8x on others)\n", v.Speedup)
		fmt.Fprintf(w, "bands overlap at end: %v (paper: no overlap after early hours)\n", v.BandsOverlapAtEnd)
	}
}
