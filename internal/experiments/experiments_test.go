package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/repro/snowplow/internal/fuzzer"
)

// tinyOpts keeps the suite tests fast; the real scales live in Quick/Full.
func tinyOpts() Options {
	return Options{
		Seed:             5,
		Bases:            50,
		MutationsPerBase: 120,
		TrainEpochs:      3,
		FuzzBudget:       300_000,
		LongBudget:       600_000,
		DirectedBudget:   120_000,
		Repeats:          2,
		Workers:          2,
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	d := o.withDefaults()
	q := Quick()
	if d.Bases != q.Bases || d.FuzzBudget != q.FuzzBudget || d.Repeats != q.Repeats {
		t.Fatalf("defaults not applied: %+v", d)
	}
	// Explicit values survive.
	o.Bases = 7
	if o.withDefaults().Bases != 7 {
		t.Fatal("explicit value overridden")
	}
}

func TestHarnessCachesKernels(t *testing.T) {
	h := NewHarness(tinyOpts())
	a := h.Kernel("6.8")
	b := h.Kernel("6.8")
	if a != b {
		t.Fatal("kernel not cached")
	}
	if h.Analysis("6.8") == nil {
		t.Fatal("analysis missing")
	}
}

func TestStatsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("collects a dataset")
	}
	h := NewHarness(tinyOpts())
	res := Stats(h)
	if res.Bases == 0 || res.Examples == 0 {
		t.Fatalf("empty stats: %+v", res)
	}
	if res.AvgSlotsPerBase < 15 {
		t.Fatalf("avg slots %.1f too low for 3-6 call bases", res.AvgSlotsPerBase)
	}
	if res.AvgVertices < 50 {
		t.Fatalf("avg graph vertices %.0f", res.AvgVertices)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	for _, want := range []string{"§5.1", "paper: 2372", "mutations/1000"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestTable1Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	h := NewHarness(tinyOpts())
	res := Table1(h)
	if res.PMM.N == 0 || res.Rand8.N == 0 {
		t.Fatal("empty evaluation")
	}
	// Core shape: PMM beats the random baseline.
	if res.PMM.F1 <= res.Rand8.F1 {
		t.Fatalf("PMM F1 %.3f <= Rand8 %.3f even at tiny scale", res.PMM.F1, res.Rand8.F1)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "PMModel") || !strings.Contains(buf.String(), "Rand.8") {
		t.Fatalf("render malformed:\n%s", buf.String())
	}
}

func TestBandResampling(t *testing.T) {
	b := band([][]fuzzer.Point{
		{{Cost: 10, Edges: 5}, {Cost: 20, Edges: 9}},
		{{Cost: 10, Edges: 7}, {Cost: 20, Edges: 7}},
	}, 20, 10)
	if len(b.Cost) != 2 {
		t.Fatalf("grid %v", b.Cost)
	}
	if b.Min[1] != 7 || b.Max[1] != 9 || b.Mean[1] != 8 {
		t.Fatalf("band at cost 20: min %v mean %v max %v", b.Min[1], b.Mean[1], b.Max[1])
	}
}

func TestCoverageAt(t *testing.T) {
	series := []fuzzer.Point{{Cost: 10, Edges: 1}, {Cost: 30, Edges: 5}}
	cases := map[int64]int{5: 0, 10: 1, 29: 1, 30: 5, 100: 5}
	for c, want := range cases {
		if got := coverageAt(series, c); got != want {
			t.Fatalf("coverageAt(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestSpeedupComputation(t *testing.T) {
	b := CurveBand{Cost: []int64{10, 20, 30, 40}, Mean: []float64{1, 5, 9, 10}}
	// Baseline final 5 reached by snowplow mean at cost 20 -> 40/20 = 2x.
	if got := speedup(b, 5, 40); got != 2 {
		t.Fatalf("speedup = %v, want 2", got)
	}
	// Never reached -> 1x.
	if got := speedup(b, 99, 40); got != 1 {
		t.Fatalf("unreachable speedup = %v, want 1", got)
	}
}

func TestAblationDeterminism(t *testing.T) {
	h := NewHarness(tinyOpts())
	res := AblationDeterminism(h)
	if res.Full > 0 {
		t.Fatalf("clean executor flipped coverage in %.0f%% of cases", res.Full*100)
	}
	if res.Ablated == 0 {
		t.Fatal("noise model produced no nondeterminism")
	}
}

func TestDirectedTargetsMix(t *testing.T) {
	h := NewHarness(tinyOpts())
	targets := directedTargets(h)
	if len(targets) < 10 {
		t.Fatalf("only %d targets", len(targets))
	}
	var shallow, deep int
	for _, tgt := range targets {
		if tgt.deep {
			deep++
		} else {
			shallow++
		}
	}
	if shallow < 4 || deep < 4 {
		t.Fatalf("target mix %d shallow / %d deep", shallow, deep)
	}
}

func TestTruncate(t *testing.T) {
	if truncate("abc", 10) != "abc" {
		t.Fatal("short string truncated")
	}
	if got := truncate("abcdefghij", 5); len(got) > 7 { // 4 bytes + ellipsis rune
		t.Fatalf("truncate produced %q", got)
	}
}

func TestTrainExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models at three worker counts")
	}
	h := NewHarness(tinyOpts())
	res := Train(h, []int{1, 2})
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	if !res.CheckpointsIdentical {
		t.Fatalf("checkpoints differ across worker counts: %+v", res.Points)
	}
	if !res.DatasetsIdentical {
		t.Fatalf("datasets differ across shard widths: %+v", res.Points)
	}
	for _, p := range res.Points {
		if p.ExamplesPerSec <= 0 || p.EpochWallMs <= 0 {
			t.Fatalf("empty measurement at %d workers: %+v", p.Workers, p)
		}
		if p.FinalValF1 != res.Points[0].FinalValF1 {
			t.Fatalf("val F1 differs across worker counts: %+v", res.Points)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	for _, want := range []string{"checkpoints identical", "GOMAXPROCS"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}
