package experiments

import (
	"os"
	"testing"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/mutation"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
	"github.com/repro/snowplow/internal/trace"
)

type fuzzerMode struct {
	name string
	srv  *serve.Server
}

func runOneScratch(h *Harness, k *kernel.Kernel, an *cfa.Analysis, mode fuzzerMode) *fuzzer.Stats {
	cfg := fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: h.Opts.Seed, Budget: h.Opts.FuzzBudget,
		SeedCorpus: seedPrograms(h, "6.8", h.Opts.Seed),
	}
	if mode.srv != nil {
		cfg.Mode = fuzzer.ModeSnowplow
		cfg.Server = mode.srv
	}
	return mustRun(fuzzer.New(cfg))
}

// TestScratchHeadline is a manual exploration harness (EXP_SCRATCH=1): it
// trains the model and runs the Figure-6 comparison on kernel 6.8 only,
// printing the result, so fuzzing dynamics can be tuned quickly.
func TestScratchHeadline(t *testing.T) {
	if os.Getenv("EXP_SCRATCH") == "" {
		t.Skip("set EXP_SCRATCH=1 to run")
	}
	opts := Quick()
	opts.Bases = 120
	opts.MutationsPerBase = 200
	opts.TrainEpochs = 8
	opts.FuzzBudget = 1_000_000
	opts.Repeats = 2
	h := NewHarness(opts)
	h.Log = os.Stderr

	t1 := Table1(h)
	t1.Render(os.Stderr)

	v := fig6Version(h, "6.8")
	res := Fig6Result{Versions: []Fig6Version{v}}
	res.Render(os.Stderr)
}

// TestScratchIsolated measures localization value in isolation
// (EXP_ISO=1): for corpus entries with fresh argument-gated frontier
// targets, how often do N guided vs N random argument mutations cover one
// of the targets?
func TestScratchIsolated(t *testing.T) {
	if os.Getenv("EXP_ISO") == "" {
		t.Skip("set EXP_ISO=1 to run")
	}
	opts := Quick()
	opts.Bases = 120
	opts.MutationsPerBase = 200
	opts.TrainEpochs = 8
	h := NewHarness(opts)
	h.Log = os.Stderr
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	m, _ := h.Model()
	b := qgraph.NewBuilder(k, an)
	m.Freeze()

	// Build a mid-campaign corpus.
	f := fuzzer.New(fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: 99, Budget: 300_000, SeedCorpus: seedPrograms(h, "6.8", 99),
	})
	stats, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("corpus after warmup: %d entries, %d edges", stats.CorpusSize, stats.FinalEdges)

	covered := trace.BlockSet{}
	for _, e := range f.Corpus().Entries() {
		covered.Merge(e.Blocks)
	}
	mut := mutation.NewMutator(k.Target)
	exe := exec.New(k)
	r := rng.New(4242)
	const tries = 20
	var guidedHits, randomHits, cases int
	for _, e := range f.Corpus().Entries() {
		// Fresh argument-gated frontier targets of this entry.
		var targets []kernel.BlockID
		for _, alt := range an.Frontier(e.Blocks) {
			if covered.Has(alt.Entry) {
				continue
			}
			switch k.Block(alt.From).Pred.Kind {
			case kernel.PredCounterGT, kernel.PredCounterEQ:
				continue
			}
			targets = append(targets, alt.Entry)
			if len(targets) >= 16 {
				break
			}
		}
		if len(targets) == 0 {
			continue
		}
		cases++
		if cases > 40 {
			break
		}
		tgtSet := trace.NewBlockSet(targets)
		hit := func(res *exec.Result) bool {
			for _, tr := range res.CallTraces {
				for _, blk := range tr {
					if tgtSet.Has(blk) {
						return true
					}
				}
			}
			return false
		}
		// Guided: predict once, spread tries over predicted slots.
		g := b.Build(e.Prog, e.Traces, targets)
		slots, _ := m.Predict(g)
		for i := 0; i < tries; i++ {
			slot := slots[i%len(slots)]
			rec := mut.MutateArgs(r, e.Prog, []prog.GlobalSlot{slot})
			res, err := exe.Run(rec.Prog)
			if err == nil && hit(res) {
				guidedHits++
				break
			}
		}
		// Random localization, same try budget.
		for i := 0; i < tries; i++ {
			rec := mut.MutateType(r, e.Prog, mutation.ArgMutation)
			res, err := exe.Run(rec.Prog)
			if err == nil && hit(res) {
				randomHits++
				break
			}
		}
	}
	t.Logf("isolated localization: %d cases, guided hit %d, random hit %d (within %d tries)",
		cases, guidedHits, randomHits, tries)
}

// TestScratchYield diagnoses per-class mutation yield (EXP_YIELD=1).
func TestScratchYield(t *testing.T) {
	if os.Getenv("EXP_YIELD") == "" {
		t.Skip("set EXP_YIELD=1 to run")
	}
	opts := Quick()
	opts.Bases = 120
	opts.MutationsPerBase = 200
	opts.TrainEpochs = 8
	opts.FuzzBudget = 1_000_000
	h := NewHarness(opts)
	h.Log = os.Stderr
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	srv := h.Server("6.8")
	defer srv.Close()

	for _, mode := range []fuzzerMode{
		{name: "syzkaller"},
		{name: "snowplow", srv: srv},
	} {
		stats := runOneScratch(h, k, an, mode)
		y := stats.Yield
		t.Logf("%s: final edges %d, execs %d", mode.name, stats.FinalEdges, stats.Executions)
		rate := func(e, x int64) float64 {
			if x == 0 {
				return 0
			}
			return float64(e) / float64(x)
		}
		t.Logf("  guided:  %6d execs, %6d edges (%.3f/exec)", y.GuidedExecs, y.GuidedEdges, rate(y.GuidedEdges, y.GuidedExecs))
		t.Logf("  randarg: %6d execs, %6d edges (%.3f/exec)", y.RandArgExecs, y.RandArgEdges, rate(y.RandArgEdges, y.RandArgExecs))
		t.Logf("  other:   %6d execs, %6d edges (%.3f/exec)", y.OtherMutExecs, y.OtherMutEdges, rate(y.OtherMutEdges, y.OtherMutExecs))
		t.Logf("  gen:     %6d execs, %6d edges (%.3f/exec)", y.GenerateExecs, y.GenerateEdges, rate(y.GenerateEdges, y.GenerateExecs))
		t.Logf("  pmm: %d queries %d predictions", stats.PMMQueries, stats.PMMPredictions)
	}
}

// TestScratchTable5 validates the directed-fuzzing experiment end to end
// (EXP_T5=1).
func TestScratchTable5(t *testing.T) {
	if os.Getenv("EXP_T5") == "" {
		t.Skip("set EXP_T5=1 to run")
	}
	opts := Quick()
	opts.Bases = 120
	opts.MutationsPerBase = 200
	opts.TrainEpochs = 8
	opts.DirectedBudget = 300_000
	opts.Repeats = 3
	h := NewHarness(opts)
	h.Log = os.Stderr
	res := Table5(h)
	res.Render(os.Stderr)
}
