package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
)

// TrainPoint is one worker-count measurement of the training/harvest
// scaling sweep.
type TrainPoint struct {
	Workers int
	// EpochWallMs is mean wall-clock per supervised epoch (training loop
	// plus the per-epoch validation pass, both of which parallelize).
	EpochWallMs float64
	// ExamplesPerSec is supervised training throughput (live examples per
	// second of training wall time).
	ExamplesPerSec float64
	// Speedup is throughput relative to the Workers=1 point.
	Speedup float64
	// FinalValF1 is the last epoch's validation F1 — identical across
	// worker counts by the determinism guarantee.
	FinalValF1 float64
	// CheckpointSHA256 digests the serialized model; equal digests across
	// points prove byte-identical checkpoints.
	CheckpointSHA256 string
	// CollectWallMs is wall-clock of harvesting the experiment corpus at
	// this shard width.
	CollectWallMs float64
	// CollectSpeedup is harvest throughput relative to Workers=1.
	CollectSpeedup float64
	// DatasetSHA256 digests the serialized harvest; equal digests across
	// points prove the dataset is independent of the shard width.
	DatasetSHA256 string
}

// TrainResult is the data-parallel training experiment (BENCH_train.json).
type TrainResult struct {
	// MaxProcs is runtime.GOMAXPROCS at measurement time: scaling is
	// bounded by it, so a 4-worker point on a 1-core host documents its
	// own ceiling.
	MaxProcs int
	// Batch is the minibatch size shared by every point (workers split the
	// examples of one minibatch, so speedup is bounded by Batch too).
	Batch int
	// Epochs per training run.
	Epochs int
	// TrainExamples/ValExamples size the splits.
	TrainExamples int
	ValExamples   int
	// CheckpointsIdentical is true when every worker count produced the
	// same checkpoint digest (the tentpole guarantee).
	CheckpointsIdentical bool
	// DatasetsIdentical is true when every shard width harvested the same
	// dataset digest.
	DatasetsIdentical bool
	Points            []TrainPoint
}

// Train measures data-parallel training and sharded harvest scaling at
// worker counts 1/2/4 and proves the determinism guarantee: byte-identical
// checkpoints and datasets at every width.
func Train(h *Harness, workerCounts []int) TrainResult {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	opts := h.Opts
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	b := qgraph.NewBuilder(k, an)

	// Harvest corpus shared by every shard width (same generator stream as
	// the harness dataset, distinct seed offset so caches don't interfere).
	g := prog.NewGenerator(k.Target)
	r := rng.New(opts.Seed + 0x7b41)
	bases := make([]*prog.Prog, opts.Bases)
	for i := range bases {
		bases[i] = g.Generate(r, 3+r.Intn(4))
	}

	train, val, _ := h.Splits()
	tcfg := pmm.DefaultTrainConfig()
	tcfg.Epochs = opts.TrainEpochs
	tcfg.Seed = opts.Seed
	tcfg.Batch = opts.TrainBatch
	if tcfg.Batch < 2 {
		tcfg.Batch = 8 // workers split a minibatch; per-example stepping cannot scale
	}
	ctrain := pmm.CompileDataset(b, train, tcfg.PosWeight)
	cval := pmm.CompileDataset(b, val, 1)

	res := TrainResult{
		MaxProcs:      runtime.GOMAXPROCS(0),
		Batch:         tcfg.Batch,
		Epochs:        tcfg.Epochs,
		TrainExamples: ctrain.Len(),
		ValExamples:   cval.Len(),
	}
	var baseThroughput, baseCollect float64
	for _, w := range workerCounts {
		h.logf("train: %d worker(s)...\n", w)
		tc := tcfg
		tc.Workers = w

		start := time.Now()
		m, report := pmm.TrainCompiled(b, pmm.DefaultConfig(), tc, ctrain, cval)
		elapsed := time.Since(start)

		pt := TrainPoint{Workers: w}
		if tc.Epochs > 0 {
			pt.EpochWallMs = float64(elapsed.Milliseconds()) / float64(tc.Epochs)
		}
		if s := elapsed.Seconds(); s > 0 {
			pt.ExamplesPerSec = float64(ctrain.Len()*tc.Epochs) / s
		}
		if len(report.ValF1) > 0 {
			pt.FinalValF1 = report.ValF1[len(report.ValF1)-1]
		}
		var ckpt strings.Builder
		if err := m.Save(&ckpt); err != nil {
			panic(err)
		}
		sum := sha256.Sum256([]byte(ckpt.String()))
		pt.CheckpointSHA256 = hex.EncodeToString(sum[:8])
		if baseThroughput == 0 {
			baseThroughput = pt.ExamplesPerSec
		}
		if baseThroughput > 0 {
			pt.Speedup = pt.ExamplesPerSec / baseThroughput
		}

		h.logf("collect: %d worker(s)...\n", w)
		c := dataset.NewCollector(k, an)
		c.MutationsPerBase = opts.MutationsPerBase
		c.Workers = w
		start = time.Now()
		ds, _ := c.Collect(rng.New(opts.Seed+0xc0de), bases)
		collectElapsed := time.Since(start)
		pt.CollectWallMs = float64(collectElapsed.Milliseconds())
		var raw strings.Builder
		if err := ds.Save(&raw); err != nil {
			panic(err)
		}
		dsum := sha256.Sum256([]byte(raw.String()))
		pt.DatasetSHA256 = hex.EncodeToString(dsum[:8])
		if baseCollect == 0 {
			baseCollect = pt.CollectWallMs
		}
		if pt.CollectWallMs > 0 {
			pt.CollectSpeedup = baseCollect / pt.CollectWallMs
		}

		res.Points = append(res.Points, pt)
	}
	res.CheckpointsIdentical = allSame(res.Points, func(p TrainPoint) string { return p.CheckpointSHA256 })
	res.DatasetsIdentical = allSame(res.Points, func(p TrainPoint) string { return p.DatasetSHA256 })
	return res
}

func allSame(pts []TrainPoint, key func(TrainPoint) string) bool {
	for i := 1; i < len(pts); i++ {
		if key(pts[i]) != key(pts[0]) {
			return false
		}
	}
	return len(pts) > 0
}

// Render prints the scaling table.
func (r TrainResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== Data-parallel training & harvest scaling (GOMAXPROCS=%d, batch=%d, %d epochs, %d/%d train/val examples) ==\n",
		r.MaxProcs, r.Batch, r.Epochs, r.TrainExamples, r.ValExamples)
	fmt.Fprintf(w, "%8s %12s %12s %8s %8s %12s %10s\n",
		"workers", "epoch-ms", "examples/s", "speedup", "val-F1", "collect-ms", "c-speedup")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %12.1f %12.0f %7.2fx %8.3f %12.1f %9.2fx\n",
			p.Workers, p.EpochWallMs, p.ExamplesPerSec, p.Speedup, p.FinalValF1, p.CollectWallMs, p.CollectSpeedup)
	}
	fmt.Fprintf(w, "checkpoints identical across worker counts: %v\n", r.CheckpointsIdentical)
	fmt.Fprintf(w, "datasets identical across shard widths:     %v\n", r.DatasetsIdentical)
	fmt.Fprintf(w, "(scaling is bounded by GOMAXPROCS and the minibatch size; on a multi-core host expect >=2x at 4 workers)\n")
}
