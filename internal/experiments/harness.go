// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic-kernel substrate: §5.1 dataset statistics,
// Table 1 selector accuracy, Figure 6 coverage curves, Table 2/3/4 crash
// campaigns and triage, Table 5 directed fuzzing, §5.5 performance
// characteristics, and the DESIGN.md ablations.
//
// Absolute numbers differ from the paper (the substrate is a simulator, not
// a 96-vCPU QEMU fleet); each experiment reports the paper's number next to
// the measured one so the comparison of *shape* — who wins and by roughly
// what factor — is explicit. Experiments share one Harness so the model is
// trained once per process.
package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/repro/snowplow/internal/cfa"
	"github.com/repro/snowplow/internal/dataset"
	"github.com/repro/snowplow/internal/faultinject"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

// Options scales the experiments. Zero values take the Quick defaults.
type Options struct {
	// Seed makes the whole experiment suite reproducible.
	Seed uint64
	// Bases and MutationsPerBase size the §3.1 dataset harvest.
	Bases            int
	MutationsPerBase int
	// TrainEpochs controls PMM training.
	TrainEpochs int
	// FuzzBudget is the simulated "24-hour" budget of Figure 6.
	FuzzBudget int64
	// LongBudget is the simulated "7-day" budget of Table 2.
	LongBudget int64
	// DirectedBudget is the per-target budget of Table 5.
	DirectedBudget int64
	// Repeats is the number of repeated runs for banded results (Figure 6
	// uses 5 in the paper; Table 5 uses 5; Table 2 uses 2).
	Repeats int
	// Workers sizes the inference pool.
	Workers int
	// TrainWorkers is the data-parallel width of PMM training (see
	// pmm.TrainConfig.Workers); 0 or 1 trains single-threaded. Checkpoints
	// are byte-identical at any width for a given seed.
	TrainWorkers int
	// TrainBatch is the training minibatch size (see pmm.TrainConfig.Batch);
	// 0 or 1 keeps the per-example stepping.
	TrainBatch int
	// CollectWorkers is the harvest shard width of dataset collection (see
	// dataset.Collector.Workers); the harvested dataset is identical at any
	// width. 0 or 1 harvests single-threaded.
	CollectWorkers int
	// VMs is the simulated-VM fleet size passed to fuzzing campaigns
	// (fuzzer.Config.VMs); 0 or 1 runs campaigns sequentially.
	VMs int
	// BatchSize is the serving micro-batch limit (see serve.Options);
	// 0 leaves batching off.
	BatchSize int
	// GraphCache sizes the builder's graph-encoding LRU cache on servers
	// the harness creates; 0 disables it.
	GraphCache int
	// FaultModel, when non-nil, is the fault shape (at rate 1.0) swept by
	// the degraded-serving ablation; nil uses the default shape.
	FaultModel *faultinject.Model
	// SampleInterval is the wall-clock metrics sampling period of the
	// timeseries experiment; 0 uses obs.DefaultSampleInterval.
	SampleInterval time.Duration
}

// Quick returns options sized so the full suite completes in minutes.
func Quick() Options {
	return Options{
		Seed:             1,
		Bases:            120,
		MutationsPerBase: 220,
		TrainEpochs:      8,
		FuzzBudget:       1_000_000,
		LongBudget:       3_000_000,
		DirectedBudget:   300_000,
		Repeats:          2,
		Workers:          2,
	}
}

// Full returns options close to a faithful (if still laptop-scale)
// rendition of the paper's experiment sizes.
func Full() Options {
	return Options{
		Seed:             1,
		Bases:            400,
		MutationsPerBase: 400,
		TrainEpochs:      20,
		FuzzBudget:       6_000_000,
		LongBudget:       30_000_000,
		DirectedBudget:   1_500_000,
		Repeats:          5,
		Workers:          8,
	}
}

func (o Options) withDefaults() Options {
	q := Quick()
	if o.Seed == 0 {
		o.Seed = q.Seed
	}
	if o.Bases == 0 {
		o.Bases = q.Bases
	}
	if o.MutationsPerBase == 0 {
		o.MutationsPerBase = q.MutationsPerBase
	}
	if o.TrainEpochs == 0 {
		o.TrainEpochs = q.TrainEpochs
	}
	if o.FuzzBudget == 0 {
		o.FuzzBudget = q.FuzzBudget
	}
	if o.LongBudget == 0 {
		o.LongBudget = q.LongBudget
	}
	if o.DirectedBudget == 0 {
		o.DirectedBudget = q.DirectedBudget
	}
	if o.Repeats == 0 {
		o.Repeats = q.Repeats
	}
	if o.Workers == 0 {
		o.Workers = q.Workers
	}
	return o
}

// Harness caches expensive artifacts (kernels, datasets, the trained model)
// across experiments.
type Harness struct {
	Opts Options
	// Log receives progress lines; nil discards them.
	Log io.Writer

	mu       sync.Mutex
	kernels  map[string]*kernel.Kernel
	analyses map[string]*cfa.Analysis
	ds       *dataset.Dataset
	dsStats  dataset.CollectStats
	splits   [3]*dataset.Dataset
	model    *pmm.Model
	report   pmm.TrainReport
}

// NewHarness creates a harness with defaults filled in.
func NewHarness(opts Options) *Harness {
	return &Harness{
		Opts:     opts.withDefaults(),
		kernels:  map[string]*kernel.Kernel{},
		analyses: map[string]*cfa.Analysis{},
	}
}

func (h *Harness) logf(format string, args ...interface{}) {
	if h.Log != nil {
		fmt.Fprintf(h.Log, format, args...)
	}
}

// Kernel returns the cached kernel build for a version.
func (h *Harness) Kernel(version string) *kernel.Kernel {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.kernelLocked(version)
}

func (h *Harness) kernelLocked(version string) *kernel.Kernel {
	if k, ok := h.kernels[version]; ok {
		return k
	}
	h.logf("building kernel %s...\n", version)
	k := kernel.MustBuild(version)
	h.kernels[version] = k
	h.analyses[version] = cfa.New(k)
	return k
}

// Analysis returns the cached CFG analysis for a version.
func (h *Harness) Analysis(version string) *cfa.Analysis {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.kernelLocked(version)
	return h.analyses[version]
}

// Dataset returns the §3.1 dataset harvested on kernel 6.8 (cached), along
// with collection statistics.
func (h *Harness) Dataset() (*dataset.Dataset, dataset.CollectStats) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ds != nil {
		return h.ds, h.dsStats
	}
	k := h.kernelLocked("6.8")
	an := h.analyses["6.8"]
	h.logf("collecting dataset: %d bases x %d mutations...\n", h.Opts.Bases, h.Opts.MutationsPerBase)
	g := prog.NewGenerator(k.Target)
	r := rng.New(h.Opts.Seed + 0xda7a)
	bases := make([]*prog.Prog, h.Opts.Bases)
	for i := range bases {
		bases[i] = g.Generate(r, 3+r.Intn(4))
	}
	c := dataset.NewCollector(k, an)
	c.MutationsPerBase = h.Opts.MutationsPerBase
	c.Workers = h.Opts.CollectWorkers
	h.ds, h.dsStats = c.Collect(rng.New(h.Opts.Seed+0xc011), bases)
	train, val, eval := h.ds.Split(0.8, 0.1)
	h.splits = [3]*dataset.Dataset{train, val, eval}
	h.logf("dataset: %d examples (train %d / val %d / eval %d)\n",
		h.ds.Len(), train.Len(), val.Len(), eval.Len())
	return h.ds, h.dsStats
}

// Splits returns the train/val/eval datasets.
func (h *Harness) Splits() (train, val, eval *dataset.Dataset) {
	h.Dataset()
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.splits[0], h.splits[1], h.splits[2]
}

// Model returns the PMM trained on kernel 6.8 (cached), with its training
// report.
func (h *Harness) Model() (*pmm.Model, pmm.TrainReport) {
	train, val, _ := h.Splits()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.model != nil {
		return h.model, h.report
	}
	k := h.kernelLocked("6.8")
	an := h.analyses["6.8"]
	tcfg := pmm.DefaultTrainConfig()
	tcfg.Epochs = h.Opts.TrainEpochs
	tcfg.Seed = h.Opts.Seed
	tcfg.Batch = h.Opts.TrainBatch
	tcfg.Workers = h.Opts.TrainWorkers
	h.logf("training PMM: %d examples, %d epochs...\n", train.Len(), tcfg.Epochs)
	m, report := pmm.Train(qgraph.NewBuilder(k, an), pmm.DefaultConfig(), tcfg, train, val)
	h.logf("training done: final val F1 %.3f, threshold %.2f\n",
		last(report.ValF1), report.Threshold)
	h.model = m
	h.report = report
	return h.model, h.report
}

// Server builds an inference server over the trained model for the given
// kernel version. The caller must Close it.
func (h *Harness) Server(version string) *serve.Server {
	return h.ServerOpts(version, serve.Options{})
}

// ServerOpts builds an inference server with explicit serving options
// (fault models, deadlines, retry budgets). Workers defaults to the
// harness's pool size. The caller must Close it.
func (h *Harness) ServerOpts(version string, opts serve.Options) *serve.Server {
	m, _ := h.Model()
	k := h.Kernel(version)
	an := h.Analysis(version)
	if opts.Workers == 0 {
		opts.Workers = h.Opts.Workers
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = h.Opts.BatchSize
	}
	builder := qgraph.NewBuilder(k, an)
	if h.Opts.GraphCache > 0 {
		builder.WithCache(h.Opts.GraphCache)
	}
	return serve.NewServerOpts(m, builder, opts)
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
