package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/repro/snowplow/internal/cluster"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/obs"
)

// ClusterPoint is one worker-count measurement of the distributed-campaign
// experiment.
type ClusterPoint struct {
	Workers int
	// WallMs is the cluster campaign's wall-clock time (loopback TCP, all
	// processes in-process, so this prices protocol + merge overhead, not
	// network latency).
	WallMs int64
	// Matched reports whether the cluster's corpus/coverage/journal
	// digests are byte-identical to the single-host campaign's.
	Matched bool
	// CheckpointBytes is the size of the final periodic checkpoint.
	CheckpointBytes int
	// ResumeMatched reports whether resuming from a mid-campaign
	// checkpoint reproduced the same final digests.
	ResumeMatched bool
	// ResumeWallMs is the resumed half-campaign's wall-clock time.
	ResumeWallMs int64
}

// ClusterResult is the distributed-campaign determinism/overhead experiment
// (BENCH_cluster.json): a W-worker loopback cluster must reproduce the
// single-host campaign bit-for-bit, and the table prices what the protocol
// costs on top.
type ClusterResult struct {
	VMs              int
	Budget           int64
	SingleHostWallMs int64
	// CorpusDigest is the campaign's corpus digest (same for every row
	// when Matched holds).
	CorpusDigest string
	Points       []ClusterPoint
}

// Cluster runs one single-host campaign and the equivalent cluster
// campaign at 1, 2 and 4 workers, checking bit-identical output and
// checkpoint/resume fidelity at each width.
func Cluster(h *Harness, workerCounts []int) ClusterResult {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	opts := h.Opts
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	const vms = 4
	cfg := fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: opts.Seed, Budget: opts.FuzzBudget,
		SeedCorpus: seedPrograms(h, "6.8", opts.Seed), VMs: vms,
	}

	h.logf("cluster: single-host baseline...\n")
	jn := obs.NewJournal(0)
	single := cfg
	single.Journal = jn
	start := time.Now()
	f := fuzzer.New(single)
	mustRun(f)
	res := ClusterResult{
		VMs:              vms,
		Budget:           opts.FuzzBudget,
		SingleHostWallMs: time.Since(start).Milliseconds(),
		CorpusDigest:     cluster.CorpusDigest(f.Corpus()),
	}
	wantCover := cluster.CoverDigest(f.Corpus())
	wantJournal := cluster.JournalDigest(jn.Events())

	spec := cluster.SpecFromConfig(single, nil)
	for _, workers := range workerCounts {
		h.logf("cluster: %d worker(s)...\n", workers)
		var checkpoints [][]byte
		start = time.Now()
		got, err := cluster.RunLocal(cluster.Config{
			Spec:            spec,
			CheckpointEvery: 8,
			OnCheckpoint:    func(_ int64, data []byte) { checkpoints = append(checkpoints, data) },
		}, workers, cluster.WorkerOptions{})
		if err != nil {
			panic(fmt.Sprintf("experiments: cluster campaign (%d workers): %v", workers, err))
		}
		pt := ClusterPoint{
			Workers: workers,
			WallMs:  time.Since(start).Milliseconds(),
			Matched: got.CorpusDigest == res.CorpusDigest &&
				got.CoverDigest == wantCover && got.JournalDigest == wantJournal,
		}
		if n := len(checkpoints); n > 0 {
			pt.CheckpointBytes = len(checkpoints[n-1])
			start = time.Now()
			resumed, err := cluster.ResumeLocal(cluster.Config{Spec: spec}, checkpoints[n/2], workers, cluster.WorkerOptions{})
			if err != nil {
				panic(fmt.Sprintf("experiments: cluster resume (%d workers): %v", workers, err))
			}
			pt.ResumeWallMs = time.Since(start).Milliseconds()
			pt.ResumeMatched = resumed.CorpusDigest == res.CorpusDigest &&
				resumed.CoverDigest == wantCover && resumed.JournalDigest == wantJournal
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Render prints the cluster determinism/overhead table.
func (r ClusterResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== Distributed campaign cluster (VMs=%d, budget=%d, single-host %dms) ==\n",
		r.VMs, r.Budget, r.SingleHostWallMs)
	fmt.Fprintf(w, "%8s %8s %10s %12s %8s %10s\n", "workers", "wall", "identical", "checkpoint", "resume", "resumed-ok")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %6dms %10v %11dB %6dms %10v\n",
			p.Workers, p.WallMs, p.Matched, p.CheckpointBytes, p.ResumeWallMs, p.ResumeMatched)
	}
	fmt.Fprintf(w, "(identical = corpus+coverage+journal digests equal the single-host campaign's)\n")
}
