package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/repro/snowplow/internal/exec"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/prog"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
	"github.com/repro/snowplow/internal/trace"
)

// PerfResult reproduces the §5.5 performance characteristics.
type PerfResult struct {
	// Inference serving at saturation (paper: 57 q/s, 0.69 s latency).
	InferenceQPS     float64
	InferenceLatency time.Duration
	// Fuzzing throughput in tests/second for both modes (paper: 383
	// Snowplow vs 390 Syzkaller — near parity thanks to async inference).
	SnowplowTPS  float64
	SyzkallerTPS float64
	ParityPct    float64 // Snowplow throughput as % of Syzkaller's
}

// Perf measures serving saturation and fuzz-loop throughput.
func Perf(h *Harness) PerfResult {
	var res PerfResult
	res.InferenceQPS, res.InferenceLatency = saturateInference(h)
	res.SyzkallerTPS = fuzzThroughput(h, fuzzer.ModeSyzkaller, nil)
	srv := h.Server("6.8")
	defer srv.Close()
	res.SnowplowTPS = fuzzThroughput(h, fuzzer.ModeSnowplow, srv)
	if res.SyzkallerTPS > 0 {
		res.ParityPct = 100 * res.SnowplowTPS / res.SyzkallerTPS
	}
	return res
}

// saturateInference hammers the server with concurrent clients and
// measures steady-state throughput and latency.
func saturateInference(h *Harness) (float64, time.Duration) {
	k := h.Kernel("6.8")
	srv := h.Server("6.8")
	defer srv.Close()

	q := sampleQuery(h, k)
	const clients = 16
	const perClient = 24
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				srv.Infer(q) //nolint:errcheck // saturation probe
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	st := srv.Stats()
	qps := float64(clients*perClient) / elapsed
	return qps, st.MeanLatency
}

func sampleQuery(h *Harness, k *kernel.Kernel) serve.Query {
	g := prog.NewGenerator(k.Target)
	p := g.Generate(rng.New(h.Opts.Seed+0x9e7f), 4)
	res, err := exec.New(k).Run(p)
	if err != nil {
		panic(err)
	}
	covered := trace.NewBlockSet(trace.BlocksOf(res))
	alts := h.Analysis("6.8").Frontier(covered)
	var targets []kernel.BlockID
	for i, alt := range alts {
		if i >= 8 {
			break
		}
		targets = append(targets, alt.Entry)
	}
	return serve.Query{Prog: p, Traces: res.CallTraces, Targets: targets}
}

// FuzzThroughput measures wall-clock tests/second for both modes (the
// second half of §5.5) without the inference-saturation probe.
func FuzzThroughput(h *Harness) (snowplowTPS, syzkallerTPS float64) {
	syzkallerTPS = fuzzThroughput(h, fuzzer.ModeSyzkaller, nil)
	srv := h.Server("6.8")
	defer srv.Close()
	snowplowTPS = fuzzThroughput(h, fuzzer.ModeSnowplow, srv)
	return snowplowTPS, syzkallerTPS
}

// fuzzThroughput measures wall-clock tests/second for one mode.
func fuzzThroughput(h *Harness, mode fuzzer.Mode, srv *serve.Server) float64 {
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	cfg := fuzzer.Config{
		Mode: mode, Kernel: k, An: an,
		Seed: h.Opts.Seed, Budget: h.Opts.FuzzBudget / 4,
		SeedCorpus: seedPrograms(h, "6.8", h.Opts.Seed),
		Server:     srv,
	}
	start := time.Now()
	stats := mustRun(fuzzer.New(cfg))
	elapsed := time.Since(start).Seconds()
	if elapsed == 0 {
		return 0
	}
	return float64(stats.Executions) / elapsed
}

// SyncAblation compares wall-clock fuzz throughput of the asynchronous
// inference integration against the synchronous ablation (every guided
// round blocks on the model).
type SyncAblation struct {
	AsyncTPS float64
	SyncTPS  float64
}

// AblationSyncInference runs the sync-vs-async throughput comparison.
func AblationSyncInference(h *Harness) SyncAblation {
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	var res SyncAblation
	for _, sync := range []bool{false, true} {
		srv := h.Server("6.8")
		cfg := fuzzer.Config{
			Mode: fuzzer.ModeSnowplow, Kernel: k, An: an,
			Seed: h.Opts.Seed, Budget: h.Opts.FuzzBudget / 8,
			SeedCorpus:    seedPrograms(h, "6.8", h.Opts.Seed),
			Server:        srv,
			SyncInference: sync,
		}
		start := time.Now()
		stats := mustRun(fuzzer.New(cfg))
		elapsed := time.Since(start).Seconds()
		srv.Close()
		tps := 0.0
		if elapsed > 0 {
			tps = float64(stats.Executions) / elapsed
		}
		if sync {
			res.SyncTPS = tps
		} else {
			res.AsyncTPS = tps
		}
	}
	return res
}

// Render prints the §5.5 numbers with the paper's alongside.
func (r PerfResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== §5.5 performance characteristics ==\n")
	fmt.Fprintf(w, "inference at saturation: %.0f queries/s, mean latency %v\n", r.InferenceQPS, r.InferenceLatency.Round(time.Microsecond))
	fmt.Fprintf(w, "  (paper: 57 q/s, 0.69 s on 8 L4 GPUs; absolute numbers differ by design)\n")
	fmt.Fprintf(w, "fuzz throughput: snowplow %.0f tests/s vs syzkaller %.0f tests/s (%.0f%% parity)\n",
		r.SnowplowTPS, r.SyzkallerTPS, r.ParityPct)
	fmt.Fprintf(w, "  (paper: 383 vs 390 tests/s — asynchronous inference keeps throughput near parity)\n")
}
