package experiments

import (
	"fmt"
	"io"

	"github.com/repro/snowplow/internal/qgraph"
)

// StatsResult reproduces the §5.1 dataset-scale statistics.
type StatsResult struct {
	Bases              int
	AvgSlotsPerBase    float64 // paper: >60 arguments per test
	Mutations          int
	Successful         int
	SuccessPerThousand float64 // paper: ~45 per 1000
	Examples           int
	AvgVertices        float64 // paper: 2372
	AvgEdges           float64 // paper: 2989
	AvgArgs            float64 // paper: 62
	AvgCovered         float64 // paper: 1631
	AvgAlternatives    float64 // paper: 674
	AvgCtxSwitch       float64 // paper: 10
}

// Stats computes the §5.1 statistics over the harvested dataset.
func Stats(h *Harness) StatsResult {
	ds, cs := h.Dataset()
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	b := qgraph.NewBuilder(k, an)
	var res StatsResult
	res.Bases = cs.Bases - cs.SkippedBases
	if res.Bases > 0 {
		res.AvgSlotsPerBase = float64(cs.TotalSlots) / float64(res.Bases)
	}
	res.Mutations = cs.Mutations
	res.Successful = cs.Successful
	if cs.Mutations > 0 {
		res.SuccessPerThousand = 1000 * float64(cs.Successful) / float64(cs.Mutations)
	}
	res.Examples = ds.Len()
	n := ds.Len()
	if n > 50 {
		n = 50 // graph stats over a sample
	}
	for i := 0; i < n; i++ {
		ex := ds.Examples[i]
		g := b.Build(ex.Prog, ex.Traces, ex.Targets)
		st := g.Stats()
		res.AvgVertices += float64(len(g.Vertices))
		res.AvgEdges += float64(len(g.Edges))
		res.AvgArgs += float64(st.Args)
		res.AvgCovered += float64(st.Covered)
		res.AvgAlternatives += float64(st.Alternatives + st.Targets)
		res.AvgCtxSwitch += float64(st.CtxSwitch)
	}
	if n > 0 {
		f := float64(n)
		res.AvgVertices /= f
		res.AvgEdges /= f
		res.AvgArgs /= f
		res.AvgCovered /= f
		res.AvgAlternatives /= f
		res.AvgCtxSwitch /= f
	}
	return res
}

// Render prints the statistics with the paper's values alongside.
func (r StatsResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== §5.1 dataset statistics (measured vs paper) ==\n")
	fmt.Fprintf(w, "bases processed:             %d\n", r.Bases)
	fmt.Fprintf(w, "avg mutable args per test:   %.1f   (paper: >60; scale differs with program length)\n", r.AvgSlotsPerBase)
	fmt.Fprintf(w, "successful mutations/1000:   %.1f   (paper: ~45)\n", r.SuccessPerThousand)
	fmt.Fprintf(w, "training examples:           %d\n", r.Examples)
	fmt.Fprintf(w, "avg graph vertices:          %.0f   (paper: 2372)\n", r.AvgVertices)
	fmt.Fprintf(w, "  argument vertices:         %.0f   (paper: 62)\n", r.AvgArgs)
	fmt.Fprintf(w, "  covered block vertices:    %.0f   (paper: 1631)\n", r.AvgCovered)
	fmt.Fprintf(w, "  alternative/target nodes:  %.0f   (paper: 674)\n", r.AvgAlternatives)
	fmt.Fprintf(w, "avg graph edges:             %.0f   (paper: 2989)\n", r.AvgEdges)
	fmt.Fprintf(w, "  kernel-user switch edges:  %.0f   (paper: 10)\n", r.AvgCtxSwitch)
}
