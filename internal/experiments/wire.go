package experiments

import (
	"fmt"
	"io"
	"net"
	"time"

	"github.com/repro/snowplow/internal/cluster"
	"github.com/repro/snowplow/internal/faultinject"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/obs"
)

// WirePoint is one worker-count measurement of the WAN-wire experiment.
type WirePoint struct {
	Workers int
	// Epochs is the number of merged barriers, the unit the per-epoch
	// byte costs below are amortized over.
	Epochs int64
	// V1Bytes is the coordinator's total on-the-wire traffic (tx+rx,
	// headers included) for an all-legacy fleet: v1 fixed-width codec, no
	// compression — the pre-upgrade baseline.
	V1Bytes int64
	// RawBytes is the v2 fleet's pre-compression payload traffic: the
	// sparse varint codec alone, before the flate stage.
	RawBytes int64
	// WireBytes is the v2 fleet's actual on-the-wire traffic with frame
	// compression negotiated on.
	WireBytes int64
	// Reduction is V1Bytes/WireBytes — how much cheaper one epoch's
	// coordinator traffic got end to end.
	Reduction float64
	// Matched reports the v2 compressed campaign's digests are
	// byte-identical to the single-host campaign's.
	Matched bool
	// ShapedV1WallMs and ShapedV2WallMs are the wall-clock times of the
	// legacy and compressed campaigns over a bandwidth/latency-shaped
	// worker link — the WAN stand-in where the byte reduction becomes a
	// time win.
	ShapedV1WallMs int64
	ShapedV2WallMs int64
}

// WireResult is the WAN-scale wire experiment (BENCH_wire.json): per-epoch
// coordinator bandwidth for the v1 fixed-width protocol vs the v2
// sparse+flate protocol, plus wall-clock on a shaped link, at 1, 2 and 4
// workers. Determinism is asserted throughout — compression must change
// bytes, never bits.
type WireResult struct {
	VMs    int
	Budget int64
	// BandwidthBytesPerSec and LatencyUs describe the shaped link (per
	// worker, outbound).
	BandwidthBytesPerSec int64
	LatencyUs            int64
	CorpusDigest         string
	Points               []WirePoint
}

// shapedWorkerDial wraps every worker's connection in a bandwidth-shaped
// fault link (worker-side writes: the delta traffic that dominates
// coordinator ingress).
func shapedWorkerDial(bandwidth int64, latency time.Duration) func(string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return faultinject.NewLink(conn, faultinject.LinkOptions{Bandwidth: bandwidth, Latency: latency}), nil
	}
}

// Wire measures what the v2 wire protocol saves: for each worker count it
// runs an all-legacy baseline fleet and a compressed v2 fleet (both must
// reproduce the single-host digests), prices coordinator bytes per epoch
// for each, then reruns both over a link shaped to a fraction of the
// baseline's measured traffic so the byte reduction shows up as wall-clock.
func Wire(h *Harness, workerCounts []int) WireResult {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	opts := h.Opts
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	const vms = 4
	cfg := fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: opts.Seed, Budget: opts.FuzzBudget,
		SeedCorpus: seedPrograms(h, "6.8", opts.Seed), VMs: vms,
	}

	h.logf("wire: single-host baseline...\n")
	jn := obs.NewJournal(0)
	single := cfg
	single.Journal = jn
	f := fuzzer.New(single)
	mustRun(f)
	res := WireResult{
		VMs:          vms,
		Budget:       opts.FuzzBudget,
		CorpusDigest: cluster.CorpusDigest(f.Corpus()),
	}
	wantCover := cluster.CoverDigest(f.Corpus())
	wantJournal := cluster.JournalDigest(jn.Events())
	matches := func(got *cluster.Result) bool {
		return got.CorpusDigest == res.CorpusDigest &&
			got.CoverDigest == wantCover && got.JournalDigest == wantJournal
	}
	spec := cluster.SpecFromConfig(single, nil)
	legacyFleet := func(workers int, dial func(string) (net.Conn, error)) []cluster.WorkerOptions {
		per := make([]cluster.WorkerOptions, workers)
		for i := range per {
			per[i] = cluster.WorkerOptions{LegacyWire: true, Dial: dial}
		}
		return per
	}
	v2Fleet := func(workers int, dial func(string) (net.Conn, error)) []cluster.WorkerOptions {
		per := make([]cluster.WorkerOptions, workers)
		for i := range per {
			per[i] = cluster.WorkerOptions{Dial: dial}
		}
		return per
	}

	for _, workers := range workerCounts {
		h.logf("wire: %d worker(s), v1 baseline...\n", workers)
		v1, err := cluster.RunLocalOpts(cluster.Config{Spec: spec}, legacyFleet(workers, nil))
		if err != nil {
			panic(fmt.Sprintf("experiments: wire v1 campaign (%d workers): %v", workers, err))
		}
		if !matches(v1) {
			panic(fmt.Sprintf("experiments: wire v1 campaign (%d workers) diverged from single host", workers))
		}
		h.logf("wire: %d worker(s), v2+flate...\n", workers)
		v2, err := cluster.RunLocalOpts(cluster.Config{Spec: spec, Compress: 6}, v2Fleet(workers, nil))
		if err != nil {
			panic(fmt.Sprintf("experiments: wire v2 campaign (%d workers): %v", workers, err))
		}
		pt := WirePoint{
			Workers:   workers,
			Epochs:    v2.Wire.Epochs,
			V1Bytes:   v1.Wire.TxWireBytes + v1.Wire.RxWireBytes,
			RawBytes:  v2.Wire.TxRawBytes + v2.Wire.RxRawBytes,
			WireBytes: v2.Wire.TxWireBytes + v2.Wire.RxWireBytes,
			Matched:   matches(v2),
		}
		if pt.WireBytes > 0 {
			pt.Reduction = float64(pt.V1Bytes) / float64(pt.WireBytes)
		}

		// Shape the worker links to a quarter of the baseline's ingress per
		// second: the legacy fleet spends ~4s of aggregate serialization
		// stall, the compressed fleet proportionally less.
		if res.BandwidthBytesPerSec == 0 {
			res.BandwidthBytesPerSec = v1.Wire.RxWireBytes / 4
			if res.BandwidthBytesPerSec < 64<<10 {
				res.BandwidthBytesPerSec = 64 << 10
			}
			res.LatencyUs = 200
		}
		latency := time.Duration(res.LatencyUs) * time.Microsecond
		dial := shapedWorkerDial(res.BandwidthBytesPerSec, latency)
		h.logf("wire: %d worker(s), shaped link (%d B/s)...\n", workers, res.BandwidthBytesPerSec)
		start := time.Now()
		sv1, err := cluster.RunLocalOpts(cluster.Config{Spec: spec}, legacyFleet(workers, dial))
		if err != nil {
			panic(fmt.Sprintf("experiments: wire shaped v1 campaign (%d workers): %v", workers, err))
		}
		pt.ShapedV1WallMs = time.Since(start).Milliseconds()
		start = time.Now()
		sv2, err := cluster.RunLocalOpts(cluster.Config{Spec: spec, Compress: 6}, v2Fleet(workers, dial))
		if err != nil {
			panic(fmt.Sprintf("experiments: wire shaped v2 campaign (%d workers): %v", workers, err))
		}
		pt.ShapedV2WallMs = time.Since(start).Milliseconds()
		pt.Matched = pt.Matched && matches(sv1) && matches(sv2)
		res.Points = append(res.Points, pt)
	}
	return res
}

// Render prints the WAN-wire bandwidth/wall-clock table.
func (r WireResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== WAN wire: v1 fixed-width vs v2 sparse+flate (VMs=%d, budget=%d, link %dB/s+%dµs) ==\n",
		r.VMs, r.Budget, r.BandwidthBytesPerSec, r.LatencyUs)
	fmt.Fprintf(w, "%8s %8s %12s %12s %12s %6s %10s %11s %11s\n",
		"workers", "epochs", "v1 B/epoch", "raw B/epoch", "wire B/epoch", "gain", "identical", "shaped-v1", "shaped-v2")
	for _, p := range r.Points {
		ep := p.Epochs
		if ep == 0 {
			ep = 1
		}
		fmt.Fprintf(w, "%8d %8d %12d %12d %12d %5.1fx %10v %9dms %9dms\n",
			p.Workers, p.Epochs, p.V1Bytes/ep, p.RawBytes/ep, p.WireBytes/ep,
			p.Reduction, p.Matched, p.ShapedV1WallMs, p.ShapedV2WallMs)
	}
	fmt.Fprintf(w, "(gain = v1 bytes / v2 wire bytes; identical = all fleets reproduced the single-host digests)\n")
}
