package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/trace"
)

// ParallelPoint is one VM-count measurement of the scaling sweep.
type ParallelPoint struct {
	VMs int
	// ExecsPerSec is wall-clock fuzzing throughput (Syzkaller-mode
	// campaign, no inference in the way).
	ExecsPerSec float64
	// Speedup is ExecsPerSec relative to the VMs=1 point.
	Speedup float64
	// QPS is inference queries/second sustained by a Snowplow-mode
	// campaign at this fleet size.
	QPS float64
	// FinalEdges is the Syzkaller-mode campaign's coverage (same total
	// budget at every fleet size, so coverage should hold roughly steady).
	FinalEdges int
	// QueueWaitMs is the fleet's total wall-clock barrier wait.
	QueueWaitMs int64
}

// ParallelResult is the VM-scaling experiment (BENCH_parallel.json).
type ParallelResult struct {
	// MaxProcs is runtime.GOMAXPROCS at measurement time: scaling is
	// bounded by it, so a 4-VM point on a 1-core host documents its own
	// ceiling.
	MaxProcs int
	Points   []ParallelPoint
}

// Parallel measures wall-clock campaign throughput against simulated-VM
// fleet size. The total budget is fixed, so perfect scaling halves
// wall-clock per doubling; the per-VM counters expose where it doesn't.
func Parallel(h *Harness, vmCounts []int) ParallelResult {
	if len(vmCounts) == 0 {
		vmCounts = []int{1, 2, 4}
	}
	opts := h.Opts
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	res := ParallelResult{MaxProcs: runtime.GOMAXPROCS(0)}
	var base float64
	for _, vms := range vmCounts {
		h.logf("parallel: %d VM(s)...\n", vms)
		seeds := seedPrograms(h, "6.8", opts.Seed)
		start := time.Now()
		stats := mustRun(fuzzer.New(fuzzer.Config{
			Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
			Seed: opts.Seed, Budget: opts.FuzzBudget,
			SeedCorpus: seeds, VMs: vms,
		}))
		elapsed := time.Since(start).Seconds()
		pt := ParallelPoint{VMs: vms, FinalEdges: stats.FinalEdges}
		if elapsed > 0 {
			pt.ExecsPerSec = float64(stats.Executions) / elapsed
		}
		for _, vm := range stats.VMs {
			pt.QueueWaitMs += vm.QueueWaitNs / 1e6
		}
		if base == 0 {
			base = pt.ExecsPerSec
		}
		if base > 0 {
			pt.Speedup = pt.ExecsPerSec / base
		}

		srv := h.Server("6.8")
		start = time.Now()
		snow := mustRun(fuzzer.New(fuzzer.Config{
			Mode: fuzzer.ModeSnowplow, Kernel: k, An: an,
			Seed: opts.Seed, Budget: opts.FuzzBudget / 4,
			SeedCorpus: seeds, Server: srv, VMs: vms,
		}))
		if e := time.Since(start).Seconds(); e > 0 {
			pt.QPS = float64(snow.PMMQueries) / e
		}
		srv.Close()
		res.Points = append(res.Points, pt)
	}
	return res
}

// Render prints the scaling table.
func (r ParallelResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== Parallel campaign scaling (GOMAXPROCS=%d) ==\n", r.MaxProcs)
	fmt.Fprintf(w, "%4s %12s %8s %10s %10s %12s\n", "VMs", "execs/s", "speedup", "qps", "edges", "queue-wait")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%4d %12.0f %7.2fx %10.1f %10d %10dms\n",
			p.VMs, p.ExecsPerSec, p.Speedup, p.QPS, p.FinalEdges, p.QueueWaitMs)
	}
	fmt.Fprintf(w, "(scaling is bounded by GOMAXPROCS; on a multi-core host expect >=2.5x at 4 VMs)\n")
}

// MicroResult is the coverage/corpus hot-path microbenchmark
// (BENCH_micro.json), mirroring BenchmarkCoverMerge/BenchmarkCorpusChoose
// in-binary so CI artifacts carry the numbers without a -bench run.
type MicroResult struct {
	// CoverMergeNsPerOp is merging one realistic execution cover into an
	// accumulated total (the triage hot path).
	CoverMergeNsPerOp float64
	// CoverNewEdgesNsPerOp is the non-mutating new-edge count of the same
	// covers against the total.
	CoverNewEdgesNsPerOp float64
	// CorpusChooseNsPerOp is one lock-free snapshot Choose.
	CorpusChooseNsPerOp float64
	// CorpusEntries is entries in the measured corpus.
	CorpusEntries int
}

// Micro measures the coverage-set and corpus hot paths over a corpus
// produced by a real short campaign (so cover shapes and sizes are
// representative, not synthetic).
func Micro(h *Harness) MicroResult {
	opts := h.Opts
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	f := fuzzer.New(fuzzer.Config{
		Mode: fuzzer.ModeSyzkaller, Kernel: k, An: an,
		Seed: opts.Seed, Budget: 300_000,
		SeedCorpus: seedPrograms(h, "6.8", opts.Seed),
	})
	mustRun(f)
	corp := f.Corpus()
	entries := corp.Entries()
	res := MicroResult{CorpusEntries: len(entries)}
	if len(entries) == 0 {
		return res
	}

	const rounds = 200
	start := time.Now()
	ops := 0
	for i := 0; i < rounds; i++ {
		total := trace.NewCover()
		for _, e := range entries {
			total.Merge(e.Cover)
			ops++
		}
	}
	res.CoverMergeNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(ops)

	total := trace.NewCover()
	for _, e := range entries {
		total.Merge(e.Cover)
	}
	start = time.Now()
	ops = 0
	for i := 0; i < rounds; i++ {
		for _, e := range entries {
			total.NewEdges(e.Cover)
			ops++
		}
	}
	res.CoverNewEdgesNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(ops)

	r := rng.New(opts.Seed)
	const chooses = 2_000_000
	start = time.Now()
	for i := 0; i < chooses; i++ {
		corp.Choose(r)
	}
	res.CorpusChooseNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(chooses)
	return res
}

// Render prints the microbenchmark numbers.
func (r MicroResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== Coverage/corpus hot-path microbenchmarks (%d corpus entries) ==\n", r.CorpusEntries)
	fmt.Fprintf(w, "cover merge:     %8.1f ns/op\n", r.CoverMergeNsPerOp)
	fmt.Fprintf(w, "cover new-edges: %8.1f ns/op\n", r.CoverNewEdgesNsPerOp)
	fmt.Fprintf(w, "corpus choose:   %8.1f ns/op\n", r.CorpusChooseNsPerOp)
}
