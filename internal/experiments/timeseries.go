package experiments

import (
	"fmt"
	"io"

	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/serve"
)

// TimeseriesRun is one instrumented campaign: its simulated-time coverage
// series (deterministic per seed), the wall-clock metric samples the obs
// sampler collected while it ran, and the final registry snapshot.
type TimeseriesRun struct {
	Mode string
	// Sim is the coverage curve on the simulated-cost grid — the same
	// series Figure 6 plots, so BENCH_timeseries.json rows map 1:1 onto a
	// Figure 6 curve for this seed.
	Sim []fuzzer.Point
	// Wall is the wall-clock metric time series (one Sample per tick of
	// Options.SampleInterval, plus one at start and one at stop).
	Wall []obs.Sample
	// Final is the flattened end-of-campaign registry snapshot.
	Final map[string]int64
	// JournalEvents / JournalDropped summarize the campaign's event
	// journal.
	JournalEvents  int
	JournalDropped uint64
	FinalEdges     int
	Executions     int64
}

// TimeseriesResult is both campaign modes on the trained-on kernel.
type TimeseriesResult struct {
	Kernel string
	Runs   []TimeseriesRun
}

// Timeseries runs one Snowplow and one Syzkaller campaign on kernel 6.8
// with the full observability layer attached: a metrics registry, an event
// journal, and a wall-clock sampler. The simulated-time series always has
// ~60 points (SampleEvery = budget/60) regardless of host speed, so the
// artifact is useful even when the campaign finishes faster than a few
// sampler ticks.
func Timeseries(h *Harness) TimeseriesResult {
	opts := h.Opts
	version := "6.8"
	k := h.Kernel(version)
	an := h.Analysis(version)
	res := TimeseriesResult{Kernel: version}
	sampleEvery := opts.FuzzBudget / 60
	if sampleEvery == 0 {
		sampleEvery = 1
	}

	for _, mode := range []fuzzer.Mode{fuzzer.ModeSnowplow, fuzzer.ModeSyzkaller} {
		reg := obs.NewRegistry()
		jn := obs.NewJournal(obs.DefaultJournalCap)
		cfg := fuzzer.Config{
			Mode: mode, Kernel: k, An: an,
			Seed: opts.Seed, Budget: opts.FuzzBudget, SampleEvery: sampleEvery,
			SeedCorpus: seedPrograms(h, version, opts.Seed),
			VMs:        opts.VMs,
			Metrics:    reg, Journal: jn,
		}
		if mode == fuzzer.ModeSnowplow {
			srv := h.ServerOpts(version, serve.Options{Metrics: reg})
			defer srv.Close()
			cfg.Server = srv
		}
		h.logf("timeseries %s: instrumented campaign...\n", mode)
		sampler := obs.NewSampler(reg, opts.SampleInterval)
		sampler.Start()
		stats := mustRun(fuzzer.New(cfg))
		wall := sampler.Stop()
		res.Runs = append(res.Runs, TimeseriesRun{
			Mode:           mode.String(),
			Sim:            stats.Series,
			Wall:           wall,
			Final:          reg.Values(),
			JournalEvents:  jn.Len(),
			JournalDropped: jn.Dropped(),
			FinalEdges:     stats.FinalEdges,
			Executions:     stats.Executions,
		})
	}
	return res
}

// Render prints a compact view: per-mode sample counts and a few milestone
// rows of the simulated series.
func (r TimeseriesResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== Campaign time series (kernel %s, instrumented) ==\n", r.Kernel)
	for _, run := range r.Runs {
		fmt.Fprintf(w, "\n-- %s: %d sim samples, %d wall samples, %d journal events (%d dropped) --\n",
			run.Mode, len(run.Sim), len(run.Wall), run.JournalEvents, run.JournalDropped)
		n := len(run.Sim)
		step := n / 6
		if step == 0 {
			step = 1
		}
		fmt.Fprintf(w, "%12s %10s\n", "cost", "edges")
		for i := 0; i < n; i += step {
			fmt.Fprintf(w, "%12d %10d\n", run.Sim[i].Cost, run.Sim[i].Edges)
		}
		fmt.Fprintf(w, "final: %d edges, %d executions, %d metrics tracked\n",
			run.FinalEdges, run.Executions, len(run.Final))
	}
}
