package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/repro/snowplow/internal/directed"
	"github.com/repro/snowplow/internal/kernel"
	"github.com/repro/snowplow/internal/serve"
)

// DirectedScore summarizes repeated directed runs on one target.
type DirectedScore struct {
	Successes int
	Runs      int
	AvgCost   float64 // mean cost of successful runs (0 if none)
}

// TargetOutcome is one Table-5 row: a target code location with both
// systems' average time-to-reach and success rates.
type TargetOutcome struct {
	Name      string
	Block     kernel.BlockID
	Deep      bool
	SyzDirect DirectedScore
	SnowplowD DirectedScore
	// Speedup is SyzDirect's average cost over Snowplow-D's; -1 marks INF
	// (only Snowplow-D reached the target), 0 marks neither.
	Speedup float64
}

// Table5Result is the directed-fuzzing comparison (§5.4).
type Table5Result struct {
	Targets                 []TargetOutcome
	ReachedSyz, ReachedSnow int
	// SubtotalSpeedup aggregates cost over targets both systems reached
	// (paper: 8.5x).
	SubtotalSpeedup float64
	// ExtraTargets are reached only by Snowplow-D (paper: 2).
	ExtraTargets int
}

// directedTarget pairs a location with a label.
type directedTarget struct {
	name  string
	block kernel.BlockID
	deep  bool
}

// directedTargets assembles the Table-5 target set on kernel 6.8: shallow
// syscall-entry blocks (reached by merely issuing the right call) and deep
// argument-constrained blocks drawn from planted-bug chains, mirroring the
// easy/hard split the paper observes.
func directedTargets(h *Harness) []directedTarget {
	k := h.Kernel("6.8")
	var targets []directedTarget
	// Shallow: handler-entry-adjacent blocks of a few base syscalls.
	for _, name := range []string{"open", "socket", "mmap", "timer_create", "epoll_create1", "shmget"} {
		hd := k.Handler(name)
		targets = append(targets, directedTarget{
			name:  fmt.Sprintf("%s entry", name),
			block: hd.Entry,
		})
	}
	// Deep: the last chain block before each Table-4 planted crash (one
	// branch short of the bug), requiring the full argument chain.
	deepBugs := []struct{ variant, fn string }{
		{"ioctl$SCSI_IOCTL_SEND_COMMAND", "ata_pio_sector"},
		{"io_uring_enter", "native_tss_update_io_bitmap"},
		{"timer_settime", "__sanitizer_cov_trace_pc"},
		{"mmap", "expand_stack"},
		{"pwrite64", "ext4_iomap_begin"},
		{"open", "ext4_search_dir"},
	}
	for _, db := range deepBugs {
		if id, ok := deepestChainBranch(k, db.variant, db.fn); ok {
			targets = append(targets, directedTarget{
				name:  fmt.Sprintf("%s deep (%s)", db.variant, db.fn),
				block: id,
				deep:  true,
			})
		}
	}
	// Hardest tier: crash blocks of deep generated bugs — the full
	// multi-constraint conjunction must hold, which SyzDirect's random
	// argument localization often cannot assemble within budget (the
	// paper's NA rows).
	count := 0
	for i := range k.Blocks {
		b := &k.Blocks[i]
		if b.Kind != kernel.BlockCrash || b.Crash == nil {
			continue
		}
		if b.Crash.KnownSince != "" || b.Crash.Flaky {
			continue
		}
		switch b.Subsystem {
		case "fs", "mm", "net", "scsi", "time", "ipc", "io_uring", "core":
			continue // base subsystems host the named bugs above
		}
		if i%3 != 0 {
			continue // deterministic thinning
		}
		targets = append(targets, directedTarget{
			name:  fmt.Sprintf("crash %s (%s)", b.Subsystem, b.Fn),
			block: b.ID,
			deep:  true,
		})
		count++
		if count >= 6 {
			break
		}
	}
	return targets
}

// deepestChainBranch returns the innermost branch block of a planted bug
// chain: plantChain appends the crash block first and the chain branches
// outermost-last, so the first branch with the bug's function name is the
// one guarded by every other rung.
func deepestChainBranch(k *kernel.Kernel, variant, fn string) (kernel.BlockID, bool) {
	hd := k.Handler(variant)
	if hd == nil {
		return 0, false
	}
	for _, id := range hd.Blocks {
		b := k.Block(id)
		if b.Fn == fn && b.Kind == kernel.BlockBranch {
			return id, true
		}
	}
	return 0, false
}

// Table5 runs the directed-fuzzing experiment: SyzDirect vs Snowplow-D on
// each target, Repeats runs each.
func Table5(h *Harness) Table5Result {
	opts := h.Opts
	srv := h.Server("6.8")
	defer srv.Close()

	var res Table5Result
	var syzTotal, snowTotal float64
	for _, tgt := range directedTargets(h) {
		h.logf("table5: %s...\n", tgt.name)
		out := TargetOutcome{Name: tgt.name, Block: tgt.block, Deep: tgt.deep}
		out.SyzDirect = h.runDirected(tgt.block, nil, opts.Repeats)
		out.SnowplowD = h.runDirected(tgt.block, srv, opts.Repeats)
		switch {
		case out.SyzDirect.Successes > 0 && out.SnowplowD.Successes > 0:
			out.Speedup = out.SyzDirect.AvgCost / out.SnowplowD.AvgCost
			syzTotal += out.SyzDirect.AvgCost
			snowTotal += out.SnowplowD.AvgCost
		case out.SnowplowD.Successes > 0:
			out.Speedup = -1
		}
		if out.SyzDirect.Successes > 0 {
			res.ReachedSyz++
		}
		if out.SnowplowD.Successes > 0 {
			res.ReachedSnow++
			if out.SyzDirect.Successes == 0 {
				res.ExtraTargets++
			}
		}
		res.Targets = append(res.Targets, out)
	}
	if snowTotal > 0 {
		res.SubtotalSpeedup = syzTotal / snowTotal
	}
	sort.Slice(res.Targets, func(i, j int) bool {
		si, sj := res.Targets[i].Speedup, res.Targets[j].Speedup
		if (si < 0) != (sj < 0) {
			return si < 0 // INF rows first, like the paper
		}
		return si > sj
	})
	return res
}

func (h *Harness) runDirected(target kernel.BlockID, srv *serve.Server, repeats int) DirectedScore {
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	var score DirectedScore
	var total float64
	for rep := 0; rep < repeats; rep++ {
		r := directed.New(directed.Config{
			Kernel: k, An: an, Target: target,
			Seed:   h.Opts.Seed*1009 + uint64(rep)*333 + 7,
			Budget: h.Opts.DirectedBudget,
			Server: srv,
		})
		res, err := r.Run()
		if err != nil {
			panic(err)
		}
		score.Runs++
		if res.Reached {
			score.Successes++
			total += float64(res.Cost)
		}
	}
	if score.Successes > 0 {
		score.AvgCost = total / float64(score.Successes)
	}
	return score
}

// Render prints Table 5.
func (r Table5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== Table 5: directed fuzzing, time to reach target ==\n")
	fmt.Fprintf(w, "%-45s %16s %16s %9s\n", "Target location", "SyzDirect", "Snowplow-D", "Speedup")
	for _, t := range r.Targets {
		syz := scoreCell(t.SyzDirect)
		snow := scoreCell(t.SnowplowD)
		sp := "NA"
		switch {
		case t.Speedup < 0:
			sp = "INF"
		case t.Speedup > 0:
			sp = fmt.Sprintf("%.1f", t.Speedup)
		}
		fmt.Fprintf(w, "%-45s %16s %16s %9s\n", truncate(t.Name, 45), syz, snow, sp)
	}
	fmt.Fprintf(w, "targets reached: SyzDirect %d, Snowplow-D %d (+%d exclusive; paper: 19 vs 21, +2)\n",
		r.ReachedSyz, r.ReachedSnow, r.ExtraTargets)
	fmt.Fprintf(w, "subtotal speedup on co-reached targets: %.1fx (paper: 8.5x)\n", r.SubtotalSpeedup)
}

func scoreCell(s DirectedScore) string {
	if s.Successes == 0 {
		return fmt.Sprintf("NA (0/%d)", s.Runs)
	}
	return fmt.Sprintf("%.0f (%d/%d)", s.AvgCost, s.Successes, s.Runs)
}
