package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"github.com/repro/snowplow/internal/cluster"
	"github.com/repro/snowplow/internal/fuzzer"
	"github.com/repro/snowplow/internal/obs"
	"github.com/repro/snowplow/internal/online"
	"github.com/repro/snowplow/internal/pmm"
	"github.com/repro/snowplow/internal/qgraph"
	"github.com/repro/snowplow/internal/rng"
	"github.com/repro/snowplow/internal/serve"
)

// OnlineRow is one campaign of the online-vs-frozen ablation.
type OnlineRow struct {
	Name       string
	FinalEdges int
	CorpusSize int
	Crashes    int
	// Retrains/Swaps/Skipped/ModelVersion trace the continual-learning
	// schedule (all zero for the frozen row).
	Retrains     int64
	Swaps        int64
	Skipped      int64
	ModelVersion int64
	WallMs       int64
	// CorpusDigest and JournalDigest fingerprint the determinism-guaranteed
	// observables (the replay row must reproduce the online row's exactly).
	CorpusDigest  string
	JournalDigest string
}

// OnlineResult is the online continual-learning ablation
// (BENCH_online.json): the same campaign budget spent on a frozen
// launch-time model versus one that retrains on its own corpus and
// hot-swaps checkpoints at epoch barriers, plus a same-seed replay of the
// online campaign proving the swap schedule is deterministic.
//
// Both rows launch from a cold (untrained) model — the cold-start shape is
// where continual learning must carry its weight: the frozen row stays cold
// for the whole budget, the online row bootstraps itself from its own
// corpus. (From a well-trained launch model the validation gate correctly
// skips small-harvest candidates and the rows converge, which measures the
// gate, not the learning.)
type OnlineResult struct {
	VMs    int
	Budget int64
	Seed   uint64
	// Schedule is the normalized retrain cadence the online rows ran.
	Schedule online.Config
	Frozen   OnlineRow
	Online   OnlineRow
	// EdgeLift is Online.FinalEdges / Frozen.FinalEdges.
	EdgeLift float64
	// ReplayIdentical reports whether the online campaign's second same-seed
	// run reproduced its corpus and journal digests bit-for-bit — with at
	// least one applied swap in between, the paper's continual-learning
	// determinism claim.
	ReplayIdentical bool
}

// Online runs the continual-learning ablation: frozen vs online at equal
// budget, then a replay of the online campaign for the determinism check.
func Online(h *Harness) OnlineResult {
	opts := h.Opts
	k := h.Kernel("6.8")
	an := h.Analysis("6.8")
	m := pmm.NewModel(rng.New(opts.Seed+0xc01d), pmm.DefaultConfig(), pmm.BuildVocab(k))
	var ckpt bytes.Buffer
	if err := m.Save(&ckpt); err != nil {
		panic(err)
	}
	vms := opts.VMs
	if vms <= 0 {
		vms = 4
	}
	sched := online.Config{
		Every:            4,
		Lag:              2,
		MinCorpus:        4,
		MutationsPerBase: 8,
		TrainEpochs:      2,
		TrainBatch:       opts.TrainBatch,
	}.Normalized()

	run := func(name string, oc *online.Config) OnlineRow {
		h.logf("online ablation: %s campaign...\n", name)
		cm, err := pmm.Load(bytes.NewReader(ckpt.Bytes()))
		if err != nil {
			panic(err)
		}
		srv := serve.NewServerOpts(cm, qgraph.NewBuilder(k, an), serve.Options{
			Workers:   opts.Workers,
			QueueSize: 1024,
			Deadline:  30 * time.Second,
		})
		defer srv.Close()
		jn := obs.NewJournal(0)
		cfg := fuzzer.Config{
			Mode: fuzzer.ModeSnowplow, Kernel: k, An: an,
			Seed: opts.Seed, Budget: opts.FuzzBudget, VMs: vms,
			SeedCorpus: seedPrograms(h, "6.8", opts.Seed),
			Server:     srv, Journal: jn,
			Online:               oc,
			OnlineTrainWorkers:   opts.TrainWorkers,
			OnlineCollectWorkers: opts.CollectWorkers,
		}
		start := time.Now()
		f := fuzzer.New(cfg)
		stats := mustRun(f)
		return OnlineRow{
			Name:          name,
			FinalEdges:    stats.FinalEdges,
			CorpusSize:    stats.CorpusSize,
			Crashes:       len(stats.Crashes),
			Retrains:      stats.ModelRetrains,
			Swaps:         stats.ModelSwaps,
			Skipped:       stats.ModelSwapsSkipped,
			ModelVersion:  stats.ModelVersion,
			WallMs:        time.Since(start).Milliseconds(),
			CorpusDigest:  cluster.CorpusDigest(f.Corpus()),
			JournalDigest: cluster.JournalDigest(jn.Events()),
		}
	}

	res := OnlineResult{VMs: vms, Budget: opts.FuzzBudget, Seed: opts.Seed, Schedule: sched}
	res.Frozen = run("frozen", nil)
	res.Online = run("online", &sched)
	if res.Frozen.FinalEdges > 0 {
		res.EdgeLift = float64(res.Online.FinalEdges) / float64(res.Frozen.FinalEdges)
	}
	replay := run("online-replay", &sched)
	res.ReplayIdentical = replay.CorpusDigest == res.Online.CorpusDigest &&
		replay.JournalDigest == res.Online.JournalDigest &&
		res.Online.Swaps > 0
	return res
}

// Render prints the online-vs-frozen table.
func (r OnlineResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== Online continual learning (VMs=%d, budget=%d, retrain every %d barriers, lag %d) ==\n",
		r.VMs, r.Budget, r.Schedule.Every, r.Schedule.Lag)
	fmt.Fprintf(w, "%-8s %8s %8s %8s %9s %6s %8s %8s %6s\n",
		"model", "edges", "corpus", "crashes", "retrains", "swaps", "skipped", "version", "wall")
	for _, row := range []OnlineRow{r.Frozen, r.Online} {
		fmt.Fprintf(w, "%-8s %8d %8d %8d %9d %6d %8d %8d %4dms\n",
			row.Name, row.FinalEdges, row.CorpusSize, row.Crashes,
			row.Retrains, row.Swaps, row.Skipped, row.ModelVersion, row.WallMs)
	}
	fmt.Fprintf(w, "edge lift %.3fx; same-seed replay identical (>=1 swap): %v\n", r.EdgeLift, r.ReplayIdentical)
	fmt.Fprintf(w, "(digests: corpus=%s journal=%s)\n", r.Online.CorpusDigest, r.Online.JournalDigest)
}
